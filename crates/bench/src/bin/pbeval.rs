//! `pbeval` — per-family detection evaluation over a fuzzed bug catalog.
//!
//! Generates a deterministic bug corpus with [`perfbug_core::fuzz`], runs
//! the full two-stage detection pipeline (collection → stage-1 inference
//! models → stage-2 classification, leave-one-bug-type-out) over it, and
//! reports ROC/AUC and detection latency *per bug family* — the view the
//! pooled Table V numbers hide. Same seed, same report, byte for byte:
//! the fuzzed catalogue is a pure function of the spec and the pipeline
//! is deterministic, so two invocations with equal options diff clean.
//!
//! ```text
//! pbeval [--seed <u64>] [--families <name,...|all>] [--count <n>]
//!        [--band <min[..max]>] [--out <file>] [--list-families]
//! ```
//!
//! Every option falls back to an environment variable (`PERFBUG_FUZZ_SEED`,
//! `PERFBUG_FUZZ_FAMILIES`, `PERFBUG_FUZZ_COUNT`, `PERFBUG_FUZZ_BAND`) so
//! CI can pin a corpus without wrapping the command line. Collection
//! respects the shared cache/shard/orchestrator knobs (`PERFBUG_CACHE_DIR`
//! et al.) exactly like the bench targets; with a cache directory set and
//! no explicit `PERFBUG_TRACE_DIR`, the workload-trace cache defaults to
//! `<cache-dir>/traces` so a fresh corpus (new fingerprint, no `.pbcol`
//! to replay) still warm-starts its traces. See `docs/BUGS.md` for the
//! family list and a walkthrough.

use std::path::PathBuf;
use std::process::ExitCode;

use perfbug_bench::{collect_cached, collect_memory_cached};
use perfbug_core::bugs::{BugCatalog, MemBugCatalog, Severity};
use perfbug_core::detmetrics::{Decision, DetectionMetrics};
use perfbug_core::experiment::{
    evaluate_two_stage_subset, Collection, CollectionConfig, ProbeScale,
};
use perfbug_core::fuzz::{Family, FuzzSpec, FuzzedCatalog};
use perfbug_core::memory::{MemCollectionConfig, TargetMetric};
use perfbug_core::report::Table;
use perfbug_core::stage1::EngineSpec;
use perfbug_core::stage2::Stage2Params;
use perfbug_ml::GbtParams;
use perfbug_workloads::{benchmark, WorkloadScale};

const USAGE: &str = "\
pbeval — per-family detection evaluation over a fuzzed bug catalog

usage: pbeval [--seed <u64>] [--families <name,...|all>] [--count <n>]
              [--band <min[..max]>] [--out <file>] [--list-families]

  --seed <u64>        fuzzer seed (default 1; env PERFBUG_FUZZ_SEED)
  --families <list>   comma-separated family names, or `all`
                      (default: the four post-paper families;
                      env PERFBUG_FUZZ_FAMILIES)
  --count <n>         variants per family (default 2; env PERFBUG_FUZZ_COUNT)
  --band <min[..max]> severity band the calibrated grade must land in,
                      e.g. `Medium..High` or `High`
                      (severities: VeryLow, Low, Medium, High;
                      env PERFBUG_FUZZ_BAND)
  --out <file>        write the JSON report to <file> and print the
                      human-readable table to stdout (default: JSON to
                      stdout)
  --list-families     print every fuzzable family name and exit

The leave-one-bug-type-out protocol needs at least two families per
simulator side; requesting a lone core (or memory) family is an error.
Collection honours PERFBUG_CACHE_DIR, PERFBUG_SHARD and the
orchestrator knobs (PERFBUG_ORCH_WORKERS et al.). When PERFBUG_CACHE_DIR
is set and PERFBUG_TRACE_DIR is not, traces are cached under
<cache-dir>/traces so every fuzzed corpus replays the same traces.";

/// The post-paper families added on top of the paper's Table III types —
/// the default corpus `pbeval` exercises.
const DEFAULT_FAMILIES: &[&str] = &[
    "TlbPageWalkDelayT",
    "ReplayEveryNDelayT",
    "SppDegreeStride",
    "DramPageCloseDelayT",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pbeval: {e}");
            eprintln!("run `pbeval --help` for usage");
            ExitCode::FAILURE
        }
    }
}

struct Options {
    seed: u64,
    families: Vec<Family>,
    count: usize,
    band: Option<(Severity, Severity)>,
    out: Option<PathBuf>,
}

fn run(args: &[String]) -> Result<(), String> {
    let mut seed_arg = None;
    let mut families_arg = None;
    let mut count_arg = None;
    let mut band_arg = None;
    let mut out = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--help" | "-h" | "help" => {
                println!("{USAGE}");
                return Ok(());
            }
            "--list-families" => {
                for f in Family::all() {
                    println!("{}", f.name());
                }
                return Ok(());
            }
            "--seed" => seed_arg = Some(value("--seed")?),
            "--families" => families_arg = Some(value("--families")?),
            "--count" => count_arg = Some(value("--count")?),
            "--band" => band_arg = Some(value("--band")?),
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    let opts = Options {
        seed: parse_seed(env_or(seed_arg, "PERFBUG_FUZZ_SEED"))?,
        families: parse_families(env_or(families_arg, "PERFBUG_FUZZ_FAMILIES"))?,
        count: parse_count(env_or(count_arg, "PERFBUG_FUZZ_COUNT"))?,
        band: parse_band(env_or(band_arg, "PERFBUG_FUZZ_BAND"))?,
        out,
    };
    evaluate(&opts)
}

/// CLI flag value, else the environment fallback, else `None`.
fn env_or(flag: Option<String>, var: &str) -> Option<String> {
    flag.or_else(|| std::env::var(var).ok())
}

fn parse_seed(raw: Option<String>) -> Result<u64, String> {
    match raw {
        None => Ok(1),
        Some(s) => s.parse().map_err(|e| format!("bad seed {s:?}: {e}")),
    }
}

fn parse_count(raw: Option<String>) -> Result<usize, String> {
    let count = match raw {
        None => 2,
        Some(s) => s.parse().map_err(|e| format!("bad count {s:?}: {e}"))?,
    };
    if count == 0 {
        return Err("count must be at least 1".into());
    }
    Ok(count)
}

fn parse_families(raw: Option<String>) -> Result<Vec<Family>, String> {
    let raw = match raw {
        None => return Ok(resolve_names(DEFAULT_FAMILIES.iter().copied())),
        Some(raw) => raw,
    };
    if raw == "all" {
        return Ok(Family::all());
    }
    let mut families = Vec::new();
    for name in raw.split(',').map(str::trim).filter(|n| !n.is_empty()) {
        let family = Family::parse(name)
            .ok_or_else(|| format!("unknown family {name:?} (see --list-families)"))?;
        if !families.contains(&family) {
            families.push(family);
        }
    }
    if families.is_empty() {
        return Err("no families requested".into());
    }
    Ok(families)
}

/// Resolves built-in family names; the names are compile-time constants,
/// so a mismatch is a bug, not user error.
fn resolve_names<'a>(names: impl Iterator<Item = &'a str>) -> Vec<Family> {
    names
        .map(|n| Family::parse(n).unwrap_or_else(|| panic!("built-in family {n:?} must resolve")))
        .collect()
}

fn parse_band(raw: Option<String>) -> Result<Option<(Severity, Severity)>, String> {
    let Some(raw) = raw else { return Ok(None) };
    let (lo, hi) = match raw.split_once("..") {
        Some((lo, hi)) => (parse_severity(lo)?, parse_severity(hi)?),
        None => {
            let s = parse_severity(&raw)?;
            (s, s)
        }
    };
    if lo > hi {
        return Err(format!("empty band {raw:?}: min is above max"));
    }
    Ok(Some((lo, hi)))
}

fn parse_severity(s: &str) -> Result<Severity, String> {
    Severity::all()
        .into_iter()
        .find(|sev| format!("{sev:?}").eq_ignore_ascii_case(s.trim()))
        .ok_or_else(|| format!("unknown severity {s:?} (VeryLow, Low, Medium, High)"))
}

/// Which simulator a collection's folds belong to — fixes how a fold's
/// `type_id` maps back to a [`Family`]. (The memory collection's embedded
/// catalogue is a same-id core placeholder, so its `type_name`s must not
/// be trusted; the id is authoritative.)
#[derive(Clone, Copy)]
enum Side {
    Core,
    Mem,
}

impl Side {
    fn family(self, type_id: u32) -> Family {
        match self {
            Side::Core => Family::Core(type_id),
            Side::Mem => Family::Mem(type_id),
        }
    }

    fn label(self) -> &'static str {
        match self {
            Side::Core => "core",
            Side::Mem => "mem",
        }
    }
}

/// One family's slice of the evaluation.
struct FamilyReport {
    name: &'static str,
    simulator: &'static str,
    /// `(describe, severity, impact)` of each fuzzed variant.
    variants: Vec<(String, Severity, f64)>,
    /// `None` when the fold produced no test decisions.
    metrics: Option<DetectionMetrics>,
    /// ROC curve of the fold's decisions as `(fpr, tpr)` pairs.
    roc: Vec<(f64, f64)>,
    /// Smallest probe-prefix length reaching TPR >= 0.5; `None` = never.
    latency: Option<usize>,
}

/// Warm-start: with collections cached but no trace directory chosen,
/// default the workload-trace cache to `<cache-dir>/traces`. Fuzzed
/// corpora change the collection fingerprint on every seed/band tweak
/// (no `.pbcol` replay), but the traces underneath never change — this
/// keeps them warm across corpora. Shard workers inherit the variable.
fn default_trace_dir() {
    if std::env::var_os(perfbug_core::tracecache::TRACE_DIR_ENV).is_none() {
        if let Some(dir) = perfbug_bench::cache_dir() {
            std::env::set_var(perfbug_core::tracecache::TRACE_DIR_ENV, dir.join("traces"));
        }
    }
}

fn evaluate(opts: &Options) -> Result<(), String> {
    default_trace_dir();
    let spec = FuzzSpec {
        seed: opts.seed,
        families: opts.families.clone(),
        count: opts.count,
        severity_band: opts.band,
    };
    let catalog = spec.generate();
    let params = Stage2Params::default();
    let mut reports = Vec::new();
    let mut overall_core = None;
    let mut overall_mem = None;

    if let Some(core) = catalog.core_catalog() {
        require_two_types(core.type_ids().len(), "core")?;
        eprintln!(
            "pbeval: collecting core side ({} variants, {} families)...",
            core.variants().len(),
            core.type_ids().len()
        );
        let col = collect_cached("pbeval-core", &core_config(core));
        let (fams, pooled) = eval_side(&col, Side::Core, &catalog, params);
        reports.extend(fams);
        overall_core = Some(pooled);
    }
    if let Some(mem) = catalog.mem_catalog() {
        require_two_types(mem.type_ids().len(), "memory")?;
        eprintln!(
            "pbeval: collecting memory side ({} variants, {} families)...",
            mem.variants().len(),
            mem.type_ids().len()
        );
        let col = collect_memory_cached("pbeval-mem", &mem_config(mem));
        let (fams, pooled) = eval_side(&col, Side::Mem, &catalog, params);
        reports.extend(fams);
        overall_mem = Some(pooled);
    }

    let json = render_json(opts, &reports, &overall_core, &overall_mem);
    match &opts.out {
        Some(path) => {
            std::fs::write(path, &json)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            println!("{}", render_table(&reports));
            println!("JSON report written to {}", path.display());
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn require_two_types(n: usize, side: &str) -> Result<(), String> {
    if n < 2 {
        return Err(format!(
            "the leave-one-type-out protocol needs at least two {side} families \
             (got {n}); request more families or none on this side"
        ));
    }
    Ok(())
}

fn gbt40() -> EngineSpec {
    EngineSpec::Gbt(GbtParams {
        n_trees: 40,
        ..GbtParams::default()
    })
}

/// Core-side collection: the replay-demo footprint (tiny scale, two
/// benchmarks, six probes, GBT-40) with the fuzzed catalogue swapped in.
fn core_config(catalog: BugCatalog) -> CollectionConfig {
    let mut config = CollectionConfig::new(vec![gbt40()], catalog);
    config.scale = ProbeScale::tiny();
    config.benchmarks = vec![
        benchmark("458.sjeng").expect("suite benchmark"),
        benchmark("462.libquantum").expect("suite benchmark"),
    ];
    config.max_probes = Some(6);
    config
}

/// Memory-side collection at the same footprint, targeting AMAT (the
/// paper's memory-focused stage-1 metric).
fn mem_config(catalog: MemBugCatalog) -> MemCollectionConfig {
    let mut config = MemCollectionConfig::new(vec![gbt40()], TargetMetric::Amat);
    config.workload = WorkloadScale::tiny();
    config.max_probes = Some(6);
    config.catalog = catalog;
    config
}

/// Runs the leave-one-type-out evaluation over one collection and slices
/// the outcome per family: fold metrics, fold ROC, and detection latency
/// (the smallest probe-prefix whose fold already reaches TPR >= 0.5 — how
/// few probes the methodology needs before it starts catching the family).
fn eval_side(
    col: &Collection,
    side: Side,
    catalog: &FuzzedCatalog,
    params: Stage2Params,
) -> (Vec<FamilyReport>, DetectionMetrics) {
    let all: Vec<usize> = (0..col.probes.len()).collect();
    let full = evaluate_two_stage_subset(col, 0, params, &all);
    let prefixes: Vec<_> = (1..=col.probes.len())
        .map(|k| {
            let subset: Vec<usize> = (0..k).collect();
            evaluate_two_stage_subset(col, 0, params, &subset)
        })
        .collect();

    let mut reports = Vec::new();
    for fold in &full.folds {
        let metrics =
            (!fold.decisions.is_empty()).then(|| DetectionMetrics::from_decisions(&fold.decisions));
        let roc = DetectionMetrics::roc(&fold.decisions)
            .iter()
            .map(|p| (p.fpr, p.tpr))
            .collect();
        let latency = prefixes.iter().enumerate().find_map(|(i, ev)| {
            let f = ev.folds.iter().find(|f| f.type_id == fold.type_id)?;
            let tpr = fold_tpr(&f.decisions)?;
            (tpr >= 0.5).then_some(i + 1)
        });
        reports.push(FamilyReport {
            name: side.family(fold.type_id).name(),
            simulator: side.label(),
            variants: fuzzed_variants(catalog, side, fold.type_id),
            metrics,
            roc,
            latency,
        });
    }
    (reports, full.metrics)
}

/// TPR of one fold's decisions; `None` when the fold has no positives.
fn fold_tpr(decisions: &[Decision]) -> Option<f64> {
    let pos = decisions.iter().filter(|d| d.has_bug).count();
    if pos == 0 {
        return None;
    }
    let tp = decisions.iter().filter(|d| d.has_bug && d.flagged).count();
    Some(tp as f64 / pos as f64)
}

/// The fuzzed variants of one family, with their calibration evidence.
fn fuzzed_variants(
    catalog: &FuzzedCatalog,
    side: Side,
    type_id: u32,
) -> Vec<(String, Severity, f64)> {
    match side {
        Side::Core => catalog
            .core
            .iter()
            .filter(|v| v.spec.type_id() == type_id)
            .map(|v| (v.spec.describe(), v.severity, v.impact))
            .collect(),
        Side::Mem => catalog
            .mem
            .iter()
            .filter(|v| v.spec.type_id() == type_id)
            .map(|v| (v.spec.describe(), v.severity, v.impact))
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// Rendering. The JSON is hand-rolled (no serde in the workspace) and must
// stay deterministic: fixed field order, fixed float precision, no
// timestamps or timings — two equal invocations diff byte-identical.

fn render_json(
    opts: &Options,
    reports: &[FamilyReport],
    overall_core: &Option<DetectionMetrics>,
    overall_mem: &Option<DetectionMetrics>,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"tool\": \"pbeval\",\n");
    out.push_str(&format!("  \"seed\": {},\n", opts.seed));
    out.push_str(&format!("  \"count\": {},\n", opts.count));
    let band = match opts.band {
        Some((lo, hi)) => format!("\"{lo:?}..{hi:?}\""),
        None => "null".into(),
    };
    out.push_str(&format!("  \"band\": {band},\n"));
    let requested: Vec<String> = opts
        .families
        .iter()
        .map(|f| format!("\"{}\"", f.name()))
        .collect();
    out.push_str(&format!("  \"requested\": [{}],\n", requested.join(", ")));
    out.push_str("  \"families\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"family\": \"{}\",\n", r.name));
        out.push_str(&format!("      \"simulator\": \"{}\",\n", r.simulator));
        out.push_str("      \"variants\": [\n");
        for (j, (describe, severity, impact)) in r.variants.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"describe\": \"{}\", \"severity\": \"{severity:?}\", \
                 \"impact\": {}}}{}\n",
                json_escape(describe),
                json_f(*impact),
                comma(j, r.variants.len()),
            ));
        }
        out.push_str("      ],\n");
        out.push_str(&format!(
            "      \"metrics\": {},\n",
            metrics_json(&r.metrics.as_ref())
        ));
        let latency = match r.latency {
            Some(k) => k.to_string(),
            None => "null".into(),
        };
        out.push_str(&format!("      \"detection_latency_probes\": {latency},\n"));
        let roc: Vec<String> = r
            .roc
            .iter()
            .map(|(fpr, tpr)| format!("[{}, {}]", json_f(*fpr), json_f(*tpr)))
            .collect();
        out.push_str(&format!("      \"roc\": [{}]\n", roc.join(", ")));
        out.push_str(&format!("    }}{}\n", comma(i, reports.len())));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"overall\": {{\"core\": {}, \"mem\": {}}}\n",
        metrics_json(&overall_core.as_ref()),
        metrics_json(&overall_mem.as_ref()),
    ));
    out.push_str("}\n");
    out
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

fn metrics_json(m: &Option<&DetectionMetrics>) -> String {
    let Some(m) = m else { return "null".into() };
    format!(
        "{{\"tpr\": {}, \"fpr\": {}, \"precision\": {}, \"auc\": {}, \
         \"positives\": {}, \"negatives\": {}}}",
        json_f(m.tpr),
        json_f(m.fpr),
        json_f(m.precision),
        json_f(m.roc_auc),
        m.positives,
        m.negatives,
    )
}

/// Fixed-precision JSON float; non-finite values become `null`.
fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_table(reports: &[FamilyReport]) -> String {
    let mut table = Table::new(vec![
        "Family",
        "Sim",
        "Variants",
        "TPR",
        "FPR",
        "Precision",
        "AUC",
        "Latency (probes)",
    ]);
    for r in reports {
        let m = |f: fn(&DetectionMetrics) -> f64| match &r.metrics {
            Some(m) => format!("{:.2}", f(m)),
            None => "-".into(),
        };
        table.row(vec![
            r.name.to_string(),
            r.simulator.to_string(),
            r.variants.len().to_string(),
            m(|m| m.tpr),
            m(|m| m.fpr),
            m(|m| m.precision),
            m(|m| m.roc_auc),
            match r.latency {
                Some(k) => k.to_string(),
                None => "never".into(),
            },
        ]);
    }
    table.render()
}

//! `pbcol` — offline maintenance CLI for `.pbcol` collection cache files.
//!
//! The collection cache (`PERFBUG_CACHE_DIR`, written by the bench
//! targets through `perfbug_core::persist`) accumulates full and shard
//! files across configurations and code revisions; this tool inspects,
//! verifies, merges and prunes them without ever touching the simulator.
//!
//! ```text
//! pbcol inspect <file>...            dump header + payload shapes + chunk
//!                                    index (for a part file: the durably
//!                                    recoverable prefix)
//! pbcol verify  [--stream] <file-or-dir>...
//!                                    checksum + shard-coverage validation;
//!                                    --stream validates chunk-by-chunk in
//!                                    O(chunk) memory with per-chunk status
//! pbcol merge   -o <out> <file>...   merge a shard set into one full file
//! pbcol prune   <dir> [--dry-run]    evict stale cache files + dead temps
//! ```
//!
//! `inspect` also prints the orchestrator's shard-attempt provenance
//! (the `.orchrun.json` run report `pborch` writes beside the cache
//! file) when one is present. `prune` evicts the `*.pbcol.*.tmp`
//! atomic-write temp files a killed writer leaves behind, but keeps
//! `*.pbcol.part.tmp` shard part files whose chunk prefix is still
//! resumable — those are crash-recovery state the shard's next attempt
//! continues from (see `docs/FORMAT.md`).
//!
//! All four directory-walking subcommands also understand the `.pbtr`
//! workload-trace cache files (`PERFBUG_TRACE_DIR`, written by
//! `perfbug_core::tracecache`): `inspect` dumps a trace file's header,
//! meta and chunk index, `verify` fully validates every probe chunk,
//! and `prune` evicts stale or corrupt trace files plus the orphaned
//! `*.pbtr.*.tmp` temps their writers leave behind when killed.
//!
//! The on-disk formats are specified byte-by-byte in `docs/FORMAT.md`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use perfbug_core::experiment::Collection;
use perfbug_core::orchestrate::{report_path_for, REPORT_EXTENSION};
use perfbug_core::persist::{
    decode_collection_with, is_part_file_name, is_temp_file_name, merge_collections,
    parse_cache_file_name, read_header, read_header_with_version, save_collection_with,
    scan_part_file, verify_stream, ChunkEntry, FileHeader, PersistError, CORPUS_REVISION,
    FILE_EXTENSION, FORMAT_VERSION,
};
use perfbug_core::serve::is_tenant_dir_name;
use perfbug_core::tracecache::{
    is_trace_temp_file_name, parse_trace_file_name, verify_trace_file, TraceReader,
    TRACE_FILE_EXTENSION, TRACE_FORMAT_VERSION, TRACE_REVISION,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((cmd, rest)) => (cmd.as_str(), rest),
        None => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd {
        "inspect" => inspect(rest),
        "verify" => verify(rest),
        "merge" => merge(rest),
        "prune" => prune(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("pbcol: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "pbcol — perfbug collection cache maintenance

USAGE:
    pbcol inspect <file>...            dump header + payload shapes + chunk
                                       index (for a `.part.tmp`: the durably
                                       recoverable prefix), and the
                                       orchestrator run report when present
    pbcol verify  [--stream] <file-or-dir>...
                                       checksum + shard-coverage validation;
                                       --stream goes chunk-by-chunk in
                                       O(chunk) memory, per-chunk status
    pbcol merge   -o <out> <file>...   merge a shard set into one full file
    pbcol prune   <dir> [--dry-run]    evict stale cache files and dead temp
                                       files; resumable shard parts are kept

inspect, verify and prune also understand `.pbtr` workload-trace cache
files (PERFBUG_TRACE_DIR) and their `*.pbtr.*.tmp` atomic-write temps.

The on-disk formats are documented in docs/FORMAT.md.";

/// All `.pbcol` files under `path` (or `path` itself when it is a file),
/// sorted for deterministic output.
fn pbcol_files(path: &Path) -> Result<Vec<PathBuf>, String> {
    if path.is_dir() {
        let entries = std::fs::read_dir(path)
            .map_err(|e| format!("cannot read directory {}: {e}", path.display()))?;
        let mut files = Vec::new();
        for entry in entries {
            let p = entry.map_err(|e| e.to_string())?.path();
            if p.extension().and_then(|e| e.to_str()) == Some(FILE_EXTENSION) {
                files.push(p);
            }
        }
        files.sort();
        Ok(files)
    } else {
        Ok(vec![path.to_path_buf()])
    }
}

/// Whether `path` is a workload-trace cache file (by extension).
fn is_trace_path(path: &Path) -> bool {
    path.extension().and_then(|e| e.to_str()) == Some(TRACE_FILE_EXTENSION)
}

/// All `.pbtr` trace files under `dir`, sorted for deterministic output.
fn trace_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read directory {}: {e}", dir.display()))?;
    let mut files = Vec::new();
    for entry in entries {
        let p = entry.map_err(|e| e.to_string())?.path();
        if is_trace_path(&p) {
            files.push(p);
        }
    }
    files.sort();
    Ok(files)
}

fn read_bytes(path: &Path) -> Result<Vec<u8>, String> {
    std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))
}

fn print_header(header: &FileHeader, version: u32) {
    println!(
        "  format version:  {version}{}",
        if version == FORMAT_VERSION {
            ""
        } else {
            "  (legacy: readable, rewritten as v3 on the next collection)"
        }
    );
    println!(
        "  corpus revision: {}{}",
        header.corpus_revision,
        if header.corpus_revision == CORPUS_REVISION {
            ""
        } else {
            "  (stale: this build collects under a different revision)"
        }
    );
    println!("  experiment kind: {}", header.kind);
    println!("  fingerprint:     {:016x}", header.fingerprint);
    println!("  coverage:        {}", header.manifest);
}

fn print_shapes(col: &Collection) {
    println!(
        "  payload:         {} probes x {} run keys, {} engines, {} captures, {} bug variants",
        col.probes.len(),
        col.keys.len(),
        col.engines.len(),
        col.captures.len(),
        col.catalog.len()
    );
    for engine in &col.engines {
        println!(
            "    engine {:<12} deltas {}x{}  train {:.2?}  infer {:.2?}",
            engine.name,
            engine.deltas.len(),
            engine.deltas.first().map_or(0, Vec::len),
            engine.train_time,
            engine.infer_time
        );
    }
}

fn inspect(args: &[String]) -> Result<(), String> {
    if args.is_empty() {
        return Err("inspect needs at least one file".into());
    }
    let mut failed = false;
    for arg in args {
        let path = Path::new(arg);
        println!("{}:", path.display());
        // A `*.pbcol.part.tmp` is a crash-recovery artifact, not a
        // finished file: report its durably recoverable chunk prefix.
        if path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(is_part_file_name)
        {
            match scan_part_file(path) {
                Ok(prefix) => {
                    print_header(&prefix.header, FORMAT_VERSION);
                    println!(
                        "  in-flight part:  {} probe(s) durably recoverable, {} torn tail byte(s)",
                        prefix.probes, prefix.torn_bytes
                    );
                    print_chunk_index(&prefix.chunks);
                }
                Err(e) => {
                    println!("  in-flight part:  nothing recoverable ({e})");
                    failed = true;
                }
            }
            continue;
        }
        // A `.pbtr` workload-trace cache file has its own header and
        // meta shapes; the chunk index printer is shared.
        if is_trace_path(path) {
            if let Err(e) = inspect_trace(path) {
                println!("  {e}");
                failed = true;
            }
            continue;
        }
        let bytes = read_bytes(path)?;
        let (header, version) = match read_header_with_version(&bytes) {
            Ok(hv) => hv,
            Err(e) => {
                println!("  unreadable header: {e}");
                failed = true;
                continue;
            }
        };
        print_header(&header, version);
        match decode_collection_with(&bytes, None) {
            Ok((col, _)) => print_shapes(&col),
            Err(e) => {
                println!("  payload:         INVALID ({e})");
                failed = true;
            }
        }
        // The v3 chunk/offset index enables O(chunk) random access;
        // surface it so a human can see what `read_probe` would seek to.
        if version == FORMAT_VERSION {
            match perfbug_core::persist::ProbeReader::open(path, None) {
                Ok(reader) => print_chunk_index(reader.chunk_index()),
                Err(e) => {
                    println!("  chunk index:     INVALID ({e})");
                    failed = true;
                }
            }
        }
        print_provenance(path);
    }
    if failed {
        Err("one or more files were unreadable".into())
    } else {
        Ok(())
    }
}

/// Inspects one `.pbtr` workload-trace cache file: header, per-probe
/// meta, name-vs-header fingerprint agreement, chunk index.
fn inspect_trace(path: &Path) -> Result<(), String> {
    let mut reader =
        TraceReader::open(path, None).map_err(|e| format!("unreadable trace file: {e}"))?;
    let header = *reader.header();
    println!("  format:          PBTR v{TRACE_FORMAT_VERSION}");
    println!(
        "  trace revision:  {}{}",
        header.trace_revision,
        if header.trace_revision == TRACE_REVISION {
            ""
        } else {
            "  (stale: this build generates under a different revision)"
        }
    );
    println!("  fingerprint:     {:016x}", header.fingerprint);
    let meta = reader.meta();
    println!(
        "  traces:          {} ({} probe(s) x {} instructions/interval)",
        meta.benchmark,
        meta.probes.len(),
        meta.interval_len
    );
    // The name must agree with the header — a renamed or hand-copied
    // file would otherwise be replayed for the wrong configuration.
    if let Some((bench, fp)) = path
        .file_name()
        .and_then(|n| n.to_str())
        .and_then(parse_trace_file_name)
    {
        if fp != header.fingerprint || bench != meta.benchmark {
            return Err(format!(
                "file name says {bench} {fp:016x}, header says {} {:016x}",
                meta.benchmark, header.fingerprint
            ));
        }
    }
    let chunks: Vec<ChunkEntry> = reader.chunk_index().to_vec();
    print_chunk_index(&chunks);
    let mut total = 0u64;
    for ordinal in 0..reader.n_probes() {
        total += reader
            .read_probe(ordinal)
            .map_err(|e| format!("probe {ordinal}: {e}"))?
            .len() as u64;
    }
    println!("  instructions:    {total} across all probes");
    Ok(())
}

/// Prints the v3 chunk/offset index (footer) of a file or part prefix.
fn print_chunk_index(chunks: &[ChunkEntry]) {
    println!("  chunk index:     {} chunk(s)", chunks.len());
    for (i, c) in chunks.iter().enumerate() {
        if c.is_meta() {
            println!(
                "    [{i:>3}] meta    offset {:>8}  len {:>8}  fnv {:016x}",
                c.offset, c.len, c.checksum
            );
        } else {
            println!(
                "    [{i:>3}] probes  offset {:>8}  len {:>8}  fnv {:016x}  probes {}..{}",
                c.offset,
                c.len,
                c.checksum,
                c.first_probe,
                c.probe_end()
            );
        }
    }
}

/// Prints the shard-attempt provenance of an orchestrated pass — the
/// `.orchrun.json` run report `pborch` (or an orchestrated bench target)
/// wrote beside the full cache file — when one is present.
fn print_provenance(path: &Path) {
    let report = report_path_for(path);
    let Ok(json) = std::fs::read_to_string(&report) else {
        return;
    };
    println!(
        "  provenance:      orchestrated pass ({})",
        report.display()
    );
    for line in json.lines() {
        println!("    {line}");
    }
}

/// Key grouping the shard files of one collection pass.
type PassKey = (String, u64);

/// Chunk-by-chunk streaming verification of one v3 file: per-chunk
/// status lines, O(chunk) peak memory. Falls back to a full in-memory
/// decode for a legacy v2 file (which has no chunk structure to stream).
fn verify_one_streaming(path: &Path) -> Result<FileHeader, String> {
    let mut n = 0usize;
    match verify_stream(path, None, |entry: &ChunkEntry| {
        n += 1;
        if entry.is_meta() {
            println!(
                "  chunk meta    @{:>8} len {:>8} ok",
                entry.offset, entry.len
            );
        } else {
            println!(
                "  chunk probes  @{:>8} len {:>8} probes {}..{} ok",
                entry.offset,
                entry.len,
                entry.first_probe,
                entry.probe_end()
            );
        }
    }) {
        Ok(header) => Ok(header),
        Err(PersistError::Version { found, .. }) if found != FORMAT_VERSION => {
            // Legacy v2: whole-file decode is the only validation.
            let bytes = read_bytes(path)?;
            let (_, header) = decode_collection_with(&bytes, None)
                .map_err(|e| format!("legacy v{found} file: {e}"))?;
            println!("  legacy v{found} file: validated by full decode (not streamable)");
            Ok(header)
        }
        Err(e) => Err(e.to_string()),
    }
}

fn verify(args: &[String]) -> Result<(), String> {
    let stream = args.iter().any(|a| a == "--stream");
    let args: Vec<&String> = args.iter().filter(|a| a.as_str() != "--stream").collect();
    if args.is_empty() {
        return Err("verify needs at least one file or directory".into());
    }
    let mut files = Vec::new();
    let mut traces = Vec::new();
    for arg in &args {
        let path = Path::new(arg.as_str());
        if path.is_dir() {
            files.extend(pbcol_files(path)?);
            traces.extend(trace_files(path)?);
        } else if is_trace_path(path) {
            traces.push(path.to_path_buf());
        } else {
            files.extend(pbcol_files(path)?);
        }
    }
    if files.is_empty() && traces.is_empty() {
        return Err("no .pbcol or .pbtr files found".into());
    }
    // Trace files are validated identically in both modes — TraceReader
    // is chunk-at-a-time by construction.
    let trace_errors = verify_traces(&traces);
    if stream {
        return verify_streaming(&files, trace_errors);
    }
    let mut errors = trace_errors;
    let mut shard_groups: BTreeMap<PassKey, Vec<(PathBuf, Collection, FileHeader)>> =
        BTreeMap::new();
    for path in &files {
        let bytes = read_bytes(path)?;
        let (col, header) = match decode_collection_with(&bytes, None) {
            Ok(decoded) => decoded,
            Err(e) => {
                println!("FAIL {}: {e}", path.display());
                errors += 1;
                continue;
            }
        };
        // The name must agree with the header — a renamed or hand-copied
        // file would otherwise serve the wrong configuration or shard.
        if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
            if let Some(parsed) = parse_cache_file_name(name) {
                let name_shard = parsed.shard;
                let header_shard = (!header.manifest.is_full())
                    .then_some((header.manifest.index, header.manifest.count));
                if parsed.fingerprint != header.fingerprint
                    || parsed.kind != header.kind
                    || name_shard != header_shard
                {
                    println!(
                        "FAIL {}: file name says {} {:016x} shard {:?}, header says {} {:016x} {}",
                        path.display(),
                        parsed.kind,
                        parsed.fingerprint,
                        name_shard,
                        header.kind,
                        header.fingerprint,
                        header.manifest
                    );
                    errors += 1;
                    continue;
                }
            }
        }
        if header.manifest.is_full() {
            println!("ok   {}: full, {}", path.display(), header.manifest);
        } else {
            println!("ok   {}: {}", path.display(), header.manifest);
            shard_groups
                .entry((header.kind.to_string(), header.fingerprint))
                .or_default()
                .push((path.clone(), col, header));
        }
    }
    // Shard sets must at least be mergeable-or-still-incomplete; overlaps
    // and partition mismatches are hard failures, missing shards a note.
    for ((kind, fingerprint), group) in shard_groups {
        let expected = group[0].2.manifest.count as usize;
        let parts: Vec<_> = group.iter().map(|(_, c, h)| (c.clone(), *h)).collect();
        if group.len() < expected {
            let mut have: Vec<u32> = group.iter().map(|(_, _, h)| h.manifest.index).collect();
            have.sort_unstable();
            println!(
                "note {kind} {fingerprint:016x}: {}/{expected} shards present (have {have:?}) — \
                 corpus not yet assemblable",
                group.len()
            );
            continue;
        }
        match merge_collections(parts) {
            Ok((col, _)) => println!(
                "ok   {kind} {fingerprint:016x}: {expected} shards merge into {} probes",
                col.probes.len()
            ),
            Err(e) => {
                println!("FAIL {kind} {fingerprint:016x}: shard set does not merge: {e}");
                errors += 1;
            }
        }
    }
    if errors > 0 {
        Err(format!("{errors} file(s)/shard set(s) failed verification"))
    } else {
        Ok(())
    }
}

/// Fully verifies `.pbtr` workload-trace files (every probe chunk
/// decoded exactly, plus the name-vs-header fingerprint agreement
/// check); returns the number of failures, printed `FAIL` lines style.
fn verify_traces(files: &[PathBuf]) -> usize {
    let mut errors = 0usize;
    for path in files {
        let (header, insts) = match verify_trace_file(path) {
            Ok(ok) => ok,
            Err(e) => {
                println!("FAIL {}: {e}", path.display());
                errors += 1;
                continue;
            }
        };
        if let Some((bench, fp)) = path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(parse_trace_file_name)
        {
            if fp != header.fingerprint {
                println!(
                    "FAIL {}: file name says {bench} {fp:016x}, header says {:016x}",
                    path.display(),
                    header.fingerprint
                );
                errors += 1;
                continue;
            }
        }
        println!(
            "ok   {}: trace file, {} probe(s), {insts} instruction(s)",
            path.display(),
            header.n_probes
        );
    }
    errors
}

/// `verify --stream`: each file is validated chunk-by-chunk with
/// per-chunk status and O(chunk) peak memory (the non-stream path holds
/// every decoded collection at once to prove shard sets merge). Shard
/// completeness is still checked — from headers alone.
/// `initial_errors` carries failures from the trace-file pass.
fn verify_streaming(files: &[PathBuf], initial_errors: usize) -> Result<(), String> {
    let mut errors = initial_errors;
    let mut shard_groups: BTreeMap<PassKey, Vec<FileHeader>> = BTreeMap::new();
    for path in files {
        println!("{}:", path.display());
        match verify_one_streaming(path) {
            Ok(header) => {
                // Same name-vs-header agreement check as the full path.
                if let Some(parsed) = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .and_then(parse_cache_file_name)
                {
                    let header_shard = (!header.manifest.is_full())
                        .then_some((header.manifest.index, header.manifest.count));
                    if parsed.fingerprint != header.fingerprint
                        || parsed.kind != header.kind
                        || parsed.shard != header_shard
                    {
                        println!(
                            "FAIL {}: file name says {} {:016x} shard {:?}, header says {} {:016x} {}",
                            path.display(),
                            parsed.kind,
                            parsed.fingerprint,
                            parsed.shard,
                            header.kind,
                            header.fingerprint,
                            header.manifest
                        );
                        errors += 1;
                        continue;
                    }
                }
                println!("ok   {}: {}", path.display(), header.manifest);
                if !header.manifest.is_full() {
                    shard_groups
                        .entry((header.kind.to_string(), header.fingerprint))
                        .or_default()
                        .push(header);
                }
            }
            Err(e) => {
                println!("FAIL {}: {e}", path.display());
                errors += 1;
            }
        }
    }
    for ((kind, fingerprint), group) in shard_groups {
        let expected = group[0].manifest.count as usize;
        let mut have: Vec<u32> = group.iter().map(|h| h.manifest.index).collect();
        have.sort_unstable();
        if group.len() < expected {
            println!(
                "note {kind} {fingerprint:016x}: {}/{expected} shards present (have {have:?}) — \
                 corpus not yet assemblable",
                group.len()
            );
        } else {
            println!("ok   {kind} {fingerprint:016x}: all {expected} shards present");
        }
    }
    if errors > 0 {
        Err(format!("{errors} file(s) failed streaming verification"))
    } else {
        Ok(())
    }
}

fn merge(args: &[String]) -> Result<(), String> {
    let mut out: Option<PathBuf> = None;
    let mut inputs = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-o" | "--out" => {
                let value = it.next().ok_or("-o needs a path")?;
                out = Some(PathBuf::from(value));
            }
            _ => inputs.push(PathBuf::from(arg)),
        }
    }
    let out = out.ok_or("merge needs -o <out-file>")?;
    if inputs.len() < 2 {
        return Err("merge needs at least two shard files".into());
    }
    let mut parts = Vec::new();
    for path in &inputs {
        let bytes = read_bytes(path)?;
        let (col, header) =
            decode_collection_with(&bytes, None).map_err(|e| format!("{}: {e}", path.display()))?;
        parts.push((col, header));
    }
    let (merged, header) = merge_collections(parts).map_err(|e| e.to_string())?;
    save_collection_with(&out, &merged, &header)
        .map_err(|e| format!("saving {}: {e}", out.display()))?;
    println!(
        "merged {} shards into {} ({} probes x {} run keys, fingerprint {:016x})",
        inputs.len(),
        out.display(),
        merged.probes.len(),
        merged.keys.len(),
        header.fingerprint
    );
    Ok(())
}

/// Why `prune` evicts a file; `None` means the file is kept.
fn stale_reason(path: &Path, bytes: &[u8]) -> Option<String> {
    let header = match read_header(bytes) {
        Ok(h) => h,
        Err(PersistError::Version { found, expected }) => {
            return Some(format!(
                "format version {found} (this build reads {expected})"
            ));
        }
        Err(e) => return Some(format!("unreadable header: {e}")),
    };
    if header.corpus_revision != CORPUS_REVISION {
        return Some(format!(
            "corpus revision {} (this build collects under {CORPUS_REVISION})",
            header.corpus_revision
        ));
    }
    if let Err(e) = decode_collection_with(bytes, None) {
        return Some(format!("corrupt payload: {e}"));
    }
    if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
        if let Some(parsed) = parse_cache_file_name(name) {
            if parsed.fingerprint != header.fingerprint || parsed.kind != header.kind {
                return Some(format!(
                    "stale fingerprint: name says {} {:016x}, header says {} {:016x}",
                    parsed.kind, parsed.fingerprint, header.kind, header.fingerprint
                ));
            }
            let header_shard = (!header.manifest.is_full())
                .then_some((header.manifest.index, header.manifest.count));
            if parsed.shard != header_shard {
                return Some(format!(
                    "stale shard name: name says shard {:?}, header says {}",
                    parsed.shard, header.manifest
                ));
            }
        }
    }
    None
}

/// Why `prune` evicts a `.pbtr` trace file; `None` means it is kept.
/// [`verify_trace_file`] already rejects wrong format versions, stale
/// trace revisions, corruption and truncation; the only staleness it
/// cannot see is a renamed file whose name no longer matches the header.
fn trace_stale_reason(path: &Path) -> Option<String> {
    let header = match verify_trace_file(path) {
        Ok((header, _)) => header,
        Err(PersistError::Version { found, expected }) => {
            return Some(format!(
                "trace format version {found} (this build reads {expected})"
            ));
        }
        Err(e) => return Some(format!("corrupt trace file: {e}")),
    };
    if let Some((bench, fp)) = path
        .file_name()
        .and_then(|n| n.to_str())
        .and_then(parse_trace_file_name)
    {
        if fp != header.fingerprint {
            return Some(format!(
                "stale fingerprint: name says {bench} {fp:016x}, header says {:016x}",
                header.fingerprint
            ));
        }
    }
    None
}

/// A `*.pbcol.*.tmp` in-flight temp file this old is orphaned: writers
/// produce one with a single `fs::write` immediately followed by a
/// rename, so no healthy writer holds one open for minutes — only a
/// worker that was killed (or crashed) mid-write leaves one behind.
const ORPHAN_TEMP_AGE: Duration = Duration::from_secs(15 * 60);

/// The atomic-write temp files under `dir` (see
/// `persist::is_temp_file_name`), sorted for deterministic output.
fn temp_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read directory {}: {e}", dir.display()))?;
    let mut files = Vec::new();
    for entry in entries {
        let p = entry.map_err(|e| e.to_string())?.path();
        if p.file_name()
            .and_then(|n| n.to_str())
            .is_some_and(is_temp_file_name)
        {
            files.push(p);
        }
    }
    files.sort();
    Ok(files)
}

/// The trace-writer atomic temp files under `dir` (see
/// `tracecache::is_trace_temp_file_name`), sorted for deterministic
/// output. Trace writes are single-shot (no resumable parts), so every
/// old one is a dead orphan.
fn trace_temp_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read directory {}: {e}", dir.display()))?;
    let mut files = Vec::new();
    for entry in entries {
        let p = entry.map_err(|e| e.to_string())?.path();
        if p.file_name()
            .and_then(|n| n.to_str())
            .is_some_and(is_trace_temp_file_name)
        {
            files.push(p);
        }
    }
    files.sort();
    Ok(files)
}

/// The orchestrator run reports (`*.orchrun.json`) under `dir`, sorted
/// for deterministic output.
fn report_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read directory {}: {e}", dir.display()))?;
    let mut files = Vec::new();
    for entry in entries {
        let p = entry.map_err(|e| e.to_string())?.path();
        if p.file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.ends_with(&format!(".{REPORT_EXTENSION}")))
        {
            files.push(p);
        }
    }
    files.sort();
    Ok(files)
}

/// Whether a temp file is old enough to be orphaned. A file whose mtime
/// is unreadable or in the future is treated as fresh (kept) — a live
/// writer must never lose its in-flight file.
fn orphaned_temp(path: &Path, min_age: Duration) -> bool {
    std::fs::metadata(path)
        .and_then(|m| m.modified())
        .ok()
        // pblint: allow(wall-clock) -- mtime-age pruning is inherently
        // wall-clock; the result gates file deletion only and never feeds
        // corpus bytes or report state.
        .and_then(|mtime| std::time::SystemTime::now().duration_since(mtime).ok())
        .is_some_and(|age| age >= min_age)
}

fn prune(args: &[String]) -> Result<(), String> {
    let mut dir: Option<PathBuf> = None;
    let mut dry_run = false;
    for arg in args {
        match arg.as_str() {
            "--dry-run" | "-n" => dry_run = true,
            _ if dir.is_none() => dir = Some(PathBuf::from(arg)),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    let dir = dir.ok_or("prune needs a cache directory")?;
    if !dir.is_dir() {
        return Err(format!("{} is not a directory", dir.display()));
    }
    prune_tree(&dir, dry_run, ORPHAN_TEMP_AGE)
}

/// Prunes `dir` itself, then every per-fingerprint tenant subdirectory
/// (`<16 hex digits>/`, the multi-tenant store layout `pbserve` keeps).
/// Each tenant is pruned *independently* — mtime gating and orphan
/// reasoning never mix files across tenant boundaries, so one tenant's
/// stale leftovers can never strand (or take down) another tenant's
/// complete shard set. Non-tenant subdirectories are left alone.
fn prune_tree(dir: &Path, dry_run: bool, temp_age: Duration) -> Result<(), String> {
    prune_dir(dir, dry_run, temp_age)?;
    let entries = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read directory {}: {e}", dir.display()))?;
    let mut tenants = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        if path.is_dir() && entry.file_name().to_str().is_some_and(is_tenant_dir_name) {
            tenants.push(path);
        }
    }
    tenants.sort();
    for tenant in tenants {
        println!("tenant {}:", tenant.display());
        prune_dir(&tenant, dry_run, temp_age)?;
    }
    Ok(())
}

fn prune_dir(dir: &Path, dry_run: bool, temp_age: Duration) -> Result<(), String> {
    let mut kept = 0usize;
    let mut evicted = 0usize;
    let mut evict = |path: &Path, reason: &str| -> Result<(), String> {
        evicted += 1;
        if dry_run {
            println!("would evict {}: {reason}", path.display());
        } else {
            std::fs::remove_file(path)
                .map_err(|e| format!("cannot remove {}: {e}", path.display()))?;
            println!("evicted {}: {reason}", path.display());
        }
        Ok(())
    };
    for path in pbcol_files(dir)? {
        let bytes = read_bytes(&path)?;
        match stale_reason(&path, &bytes) {
            None => kept += 1,
            Some(reason) => evict(&path, &reason)?,
        }
    }
    for path in trace_files(dir)? {
        match trace_stale_reason(&path) {
            None => kept += 1,
            Some(reason) => evict(&path, &reason)?,
        }
    }
    for path in trace_temp_files(dir)? {
        if orphaned_temp(&path, temp_age) {
            evict(
                &path,
                "orphaned in-flight trace temp file (writer died mid-save)",
            )?;
        } else {
            kept += 1;
        }
    }
    for path in temp_files(dir)? {
        // A shard part file (`*.pbcol.part.tmp`) with a valid chunk
        // prefix is crash-recovery state, not garbage: the next attempt
        // of its shard resumes from it instead of re-collecting. Only a
        // part with nothing durably recoverable is a dead orphan.
        if path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(is_part_file_name)
        {
            if let Ok(prefix) = scan_part_file(&path) {
                if prefix.probes > 0 {
                    kept += 1;
                    println!(
                        "kept {}: resumable part ({} probe(s) durable; the shard's next \
                         attempt resumes from it)",
                        path.display(),
                        prefix.probes
                    );
                    continue;
                }
            }
            if orphaned_temp(&path, temp_age) {
                evict(
                    &path,
                    "dead part file (no durably recoverable probes, writer gone)",
                )?;
            } else {
                kept += 1;
            }
            continue;
        }
        if orphaned_temp(&path, temp_age) {
            evict(&path, "orphaned in-flight temp file (writer died mid-save)")?;
        } else {
            kept += 1;
        }
    }
    // Run reports whose corpus is gone (evicted above, or pruned in an
    // earlier pass) are stale provenance: without this, `pbcol inspect`
    // could attribute a later re-collected corpus to the old pass.
    for path in report_files(dir)? {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let stem = name
            .strip_suffix(&format!(".{REPORT_EXTENSION}"))
            .unwrap_or(name);
        if path
            .with_file_name(format!("{stem}.{FILE_EXTENSION}"))
            .exists()
        {
            kept += 1;
        } else {
            evict(&path, "orphaned run report (its corpus is gone)")?;
        }
    }
    println!(
        "{} file(s) kept, {} {}",
        kept,
        evicted,
        if dry_run {
            "would be evicted"
        } else {
            "evicted"
        }
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scratch directory unique to this test process.
    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pbcol-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn prune_evicts_only_orphaned_temps() {
        let dir = scratch("prune-temps");
        let old = dir.join("demo-core-00ff.pbcol.123-0.tmp");
        let fresh = dir.join("demo-core-00ff.pbcol.123-1.tmp");
        let unrelated = dir.join("notes.tmp"); // not our grammar: kept
        for p in [&old, &fresh, &unrelated] {
            std::fs::write(p, b"junk").expect("write");
        }
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&old)
            .expect("open");
        file.set_modified(std::time::SystemTime::UNIX_EPOCH)
            .expect("set mtime");
        drop(file);

        prune_dir(&dir, false, ORPHAN_TEMP_AGE).expect("prune");
        assert!(!old.exists(), "orphaned temp must be evicted");
        assert!(
            fresh.exists(),
            "fresh temp must survive (writer may be live)"
        );
        assert!(
            unrelated.exists(),
            "foreign .tmp files are not ours to touch"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_recurses_into_tenant_subdirectories_independently() {
        let root = scratch("prune-tenants");
        let epoch = std::time::SystemTime::UNIX_EPOCH;
        let age = |p: &Path| {
            std::fs::OpenOptions::new()
                .write(true)
                .open(p)
                .expect("open")
                .set_modified(epoch)
                .expect("set mtime");
        };
        // Tenant A: an ancient orphaned temp and an orphaned run report.
        let tenant_a = root.join("00000000deadbeef");
        std::fs::create_dir_all(&tenant_a).expect("tenant a");
        let a_temp = tenant_a.join("demo-core-00ff.pbcol.123-0.tmp");
        std::fs::write(&a_temp, b"junk").expect("write");
        age(&a_temp);
        let a_report = tenant_a.join("demo-core-00ff.orchrun.json");
        std::fs::write(&a_report, b"{}").expect("write");
        // Tenant B: a fresh temp (live writer) that must survive A's rot.
        let tenant_b = root.join("00000000feedc0de");
        std::fs::create_dir_all(&tenant_b).expect("tenant b");
        let b_temp = tenant_b.join("demo-core-00aa.pbcol.456-0.tmp");
        std::fs::write(&b_temp, b"junk").expect("write");
        // Root level: an old orphan of its own, plus a non-tenant subdir
        // prune must not descend into.
        let root_temp = root.join("demo-core-0011.pbcol.789-0.tmp");
        std::fs::write(&root_temp, b"junk").expect("write");
        age(&root_temp);
        let foreign = root.join("not-a-tenant");
        std::fs::create_dir_all(&foreign).expect("foreign dir");
        let foreign_temp = foreign.join("demo-core-0022.pbcol.999-0.tmp");
        std::fs::write(&foreign_temp, b"junk").expect("write");
        age(&foreign_temp);

        prune_tree(&root, true, ORPHAN_TEMP_AGE).expect("dry run");
        assert!(
            a_temp.exists() && a_report.exists(),
            "dry run deletes nothing"
        );

        prune_tree(&root, false, ORPHAN_TEMP_AGE).expect("prune");
        assert!(!a_temp.exists(), "tenant A's orphaned temp must be evicted");
        assert!(
            !a_report.exists(),
            "tenant A's orphaned report must be evicted"
        );
        assert!(b_temp.exists(), "tenant B's fresh temp must survive");
        assert!(!root_temp.exists(), "root-level orphan must be evicted");
        assert!(
            foreign_temp.exists(),
            "non-tenant subdirectories are not ours to touch"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn prune_evicts_reports_whose_corpus_is_gone() {
        let dir = scratch("prune-reports");
        // Orphaned outright: no sibling corpus.
        let orphan = dir.join("old-core-00ff.orchrun.json");
        // Orphaned by cascade: its sibling corpus is corrupt (empty), so
        // the corpus is evicted first and the report follows in the same
        // pass.
        let cascade = dir.join("demo-core-00aa.orchrun.json");
        let corrupt_corpus = dir.join("demo-core-00aa.pbcol");
        for p in [&orphan, &cascade] {
            std::fs::write(p, b"{}").expect("write report");
        }
        std::fs::write(&corrupt_corpus, b"").expect("write corrupt corpus");

        prune_dir(&dir, true, ORPHAN_TEMP_AGE).expect("prune dry run");
        assert!(
            orphan.exists() && cascade.exists(),
            "dry run deletes nothing"
        );

        prune_dir(&dir, false, ORPHAN_TEMP_AGE).expect("prune");
        assert!(!orphan.exists(), "orphaned report must be evicted");
        assert!(!corrupt_corpus.exists(), "corrupt corpus must be evicted");
        assert!(
            !cascade.exists(),
            "a report orphaned by its corpus's eviction goes with it"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_keeps_resumable_parts_and_evicts_dead_ones() {
        use perfbug_core::experiment::{ProbeMeta, RunKey};
        use perfbug_core::persist::{part_path_for, ProbeRecord, ShardManifest, ShardStreamWriter};
        use perfbug_core::ExperimentKind;

        let dir = scratch("prune-parts");
        let epoch = std::time::SystemTime::UNIX_EPOCH;
        let age = |p: &Path| {
            std::fs::OpenOptions::new()
                .write(true)
                .open(p)
                .expect("open")
                .set_modified(epoch)
                .expect("set mtime");
        };

        // A part with no recoverable chunk prefix is a dead orphan.
        let dead = dir.join("demo-core-00ff.pbcol.part.tmp");
        std::fs::write(&dead, b"junk").expect("write");
        age(&dead);

        // A part with one durable probe chunk is resumable and must
        // survive prune no matter how old it is.
        let target = dir.join("live-core-00aa.pbcol");
        let header = FileHeader {
            kind: ExperimentKind::Core,
            corpus_revision: CORPUS_REVISION,
            fingerprint: 0xaa,
            manifest: ShardManifest::full(2),
        };
        let keys = vec![RunKey {
            arch: "Skylake".into(),
            set: perfbug_uarch::ArchSet::IV,
            bug: None,
        }];
        let catalog = perfbug_core::BugCatalog::core_small();
        let mut writer = ShardStreamWriter::create_or_resume(
            &target,
            &header,
            &keys,
            &["GBT-0".into()],
            &catalog,
        )
        .expect("writer");
        writer
            .append_probe(
                &ProbeRecord {
                    meta: ProbeMeta {
                        id: "bench#0".into(),
                        benchmark: "bench".into(),
                        weight: 1.0,
                    },
                    overall: vec![1.0],
                    agg: vec![vec![0.5]],
                    deltas: vec![vec![0.25]],
                    captures: Vec::new(),
                },
                &[(Duration::ZERO, Duration::ZERO)],
            )
            .expect("append");
        drop(writer); // unfinished on purpose: the part IS the artifact
        let resumable = part_path_for(&target);
        assert!(resumable.exists());
        age(&resumable);

        prune_dir(&dir, false, ORPHAN_TEMP_AGE).expect("prune");
        assert!(!dead.exists(), "dead part must be evicted");
        assert!(resumable.exists(), "resumable part must be kept");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_handles_trace_files_and_their_temps() {
        use perfbug_core::tracecache::{trace_file_name, TraceStore};
        use perfbug_workloads::WorkloadScale;

        let dir = scratch("prune-traces");
        let scale = WorkloadScale::tiny();
        let bench = &perfbug_workloads::spec2006()[0];
        let store = TraceStore::new(dir.clone());
        let program = bench.program(&scale);
        store
            .open_or_build(bench, &scale, &program)
            .expect("build trace file");
        let valid = store.trace_path(bench, &scale);
        assert!(valid.exists());

        // A renamed copy is stale: the name's fingerprint no longer
        // matches the header, so it would never be opened — evict it.
        let renamed = dir.join(trace_file_name(bench.name, 0x00ff));
        std::fs::copy(&valid, &renamed).expect("copy");
        // Not a PBTR file at all.
        let junk = dir.join(trace_file_name("junk", 0xabcd));
        std::fs::write(&junk, b"junk").expect("write junk");
        // Temps: an old one is orphaned; a fresh one may have a live
        // writer behind it and must survive.
        let old_tmp = dir.join("x-trace-0.pbtr.123-0.tmp");
        let fresh_tmp = dir.join("x-trace-0.pbtr.123-1.tmp");
        for p in [&old_tmp, &fresh_tmp] {
            std::fs::write(p, b"junk").expect("write");
        }
        std::fs::OpenOptions::new()
            .write(true)
            .open(&old_tmp)
            .expect("open")
            .set_modified(std::time::SystemTime::UNIX_EPOCH)
            .expect("set mtime");

        prune_dir(&dir, true, ORPHAN_TEMP_AGE).expect("dry run");
        for p in [&valid, &renamed, &junk, &old_tmp, &fresh_tmp] {
            assert!(p.exists(), "--dry-run must not delete {}", p.display());
        }

        prune_dir(&dir, false, ORPHAN_TEMP_AGE).expect("prune");
        assert!(valid.exists(), "a valid trace file must be kept");
        assert!(
            !renamed.exists(),
            "a stale-fingerprint name must be evicted"
        );
        assert!(!junk.exists(), "a corrupt trace file must be evicted");
        assert!(!old_tmp.exists(), "an orphaned trace temp must be evicted");
        assert!(fresh_tmp.exists(), "a fresh trace temp must be kept");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_dry_run_keeps_orphans() {
        let dir = scratch("prune-dry");
        let old = dir.join("demo-mem-00ff.pbcol.9-9.tmp");
        std::fs::write(&old, b"junk").expect("write");
        std::fs::OpenOptions::new()
            .write(true)
            .open(&old)
            .expect("open")
            .set_modified(std::time::SystemTime::UNIX_EPOCH)
            .expect("set mtime");
        prune_dir(&dir, true, ORPHAN_TEMP_AGE).expect("prune");
        assert!(old.exists(), "--dry-run must not delete");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

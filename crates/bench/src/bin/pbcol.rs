//! `pbcol` — offline maintenance CLI for `.pbcol` collection cache files.
//!
//! The collection cache (`PERFBUG_CACHE_DIR`, written by the bench
//! targets through `perfbug_core::persist`) accumulates full and shard
//! files across configurations and code revisions; this tool inspects,
//! verifies, merges and prunes them without ever touching the simulator.
//!
//! ```text
//! pbcol inspect <file>...            dump header + payload shapes
//! pbcol verify  <file-or-dir>...     checksum + shard-coverage validation
//! pbcol merge   -o <out> <file>...   merge a shard set into one full file
//! pbcol prune   <dir> [--dry-run]    evict stale cache files
//! ```
//!
//! The on-disk format is specified byte-by-byte in `docs/FORMAT.md`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use perfbug_core::experiment::Collection;
use perfbug_core::persist::{
    decode_collection_with, merge_collections, parse_cache_file_name, read_header,
    save_collection_with, FileHeader, PersistError, CORPUS_REVISION, FILE_EXTENSION,
    FORMAT_VERSION,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((cmd, rest)) => (cmd.as_str(), rest),
        None => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd {
        "inspect" => inspect(rest),
        "verify" => verify(rest),
        "merge" => merge(rest),
        "prune" => prune(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("pbcol: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "pbcol — perfbug collection cache maintenance

USAGE:
    pbcol inspect <file>...            dump header + payload shapes
    pbcol verify  <file-or-dir>...     checksum + shard-coverage validation
    pbcol merge   -o <out> <file>...   merge a shard set into one full file
    pbcol prune   <dir> [--dry-run]    evict stale cache files

The on-disk format is documented in docs/FORMAT.md.";

/// All `.pbcol` files under `path` (or `path` itself when it is a file),
/// sorted for deterministic output.
fn pbcol_files(path: &Path) -> Result<Vec<PathBuf>, String> {
    if path.is_dir() {
        let entries = std::fs::read_dir(path)
            .map_err(|e| format!("cannot read directory {}: {e}", path.display()))?;
        let mut files = Vec::new();
        for entry in entries {
            let p = entry.map_err(|e| e.to_string())?.path();
            if p.extension().and_then(|e| e.to_str()) == Some(FILE_EXTENSION) {
                files.push(p);
            }
        }
        files.sort();
        Ok(files)
    } else {
        Ok(vec![path.to_path_buf()])
    }
}

fn read_bytes(path: &Path) -> Result<Vec<u8>, String> {
    std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))
}

fn print_header(header: &FileHeader) {
    println!("  format version:  {FORMAT_VERSION}");
    println!(
        "  corpus revision: {}{}",
        header.corpus_revision,
        if header.corpus_revision == CORPUS_REVISION {
            ""
        } else {
            "  (stale: this build collects under a different revision)"
        }
    );
    println!("  experiment kind: {}", header.kind);
    println!("  fingerprint:     {:016x}", header.fingerprint);
    println!("  coverage:        {}", header.manifest);
}

fn print_shapes(col: &Collection) {
    println!(
        "  payload:         {} probes x {} run keys, {} engines, {} captures, {} bug variants",
        col.probes.len(),
        col.keys.len(),
        col.engines.len(),
        col.captures.len(),
        col.catalog.len()
    );
    for engine in &col.engines {
        println!(
            "    engine {:<12} deltas {}x{}  train {:.2?}  infer {:.2?}",
            engine.name,
            engine.deltas.len(),
            engine.deltas.first().map_or(0, Vec::len),
            engine.train_time,
            engine.infer_time
        );
    }
}

fn inspect(args: &[String]) -> Result<(), String> {
    if args.is_empty() {
        return Err("inspect needs at least one file".into());
    }
    let mut failed = false;
    for arg in args {
        let path = Path::new(arg);
        println!("{}:", path.display());
        let bytes = read_bytes(path)?;
        let header = match read_header(&bytes) {
            Ok(h) => h,
            Err(e) => {
                println!("  unreadable header: {e}");
                failed = true;
                continue;
            }
        };
        print_header(&header);
        match decode_collection_with(&bytes, None) {
            Ok((col, _)) => print_shapes(&col),
            Err(e) => {
                println!("  payload:         INVALID ({e})");
                failed = true;
            }
        }
    }
    if failed {
        Err("one or more files were unreadable".into())
    } else {
        Ok(())
    }
}

/// Key grouping the shard files of one collection pass.
type PassKey = (String, u64);

fn verify(args: &[String]) -> Result<(), String> {
    if args.is_empty() {
        return Err("verify needs at least one file or directory".into());
    }
    let mut files = Vec::new();
    for arg in args {
        files.extend(pbcol_files(Path::new(arg))?);
    }
    if files.is_empty() {
        return Err("no .pbcol files found".into());
    }
    let mut errors = 0usize;
    let mut shard_groups: BTreeMap<PassKey, Vec<(PathBuf, Collection, FileHeader)>> =
        BTreeMap::new();
    for path in &files {
        let bytes = read_bytes(path)?;
        let (col, header) = match decode_collection_with(&bytes, None) {
            Ok(decoded) => decoded,
            Err(e) => {
                println!("FAIL {}: {e}", path.display());
                errors += 1;
                continue;
            }
        };
        // The name must agree with the header — a renamed or hand-copied
        // file would otherwise serve the wrong configuration or shard.
        if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
            if let Some(parsed) = parse_cache_file_name(name) {
                let name_shard = parsed.shard;
                let header_shard = (!header.manifest.is_full())
                    .then_some((header.manifest.index, header.manifest.count));
                if parsed.fingerprint != header.fingerprint
                    || parsed.kind != header.kind
                    || name_shard != header_shard
                {
                    println!(
                        "FAIL {}: file name says {} {:016x} shard {:?}, header says {} {:016x} {}",
                        path.display(),
                        parsed.kind,
                        parsed.fingerprint,
                        name_shard,
                        header.kind,
                        header.fingerprint,
                        header.manifest
                    );
                    errors += 1;
                    continue;
                }
            }
        }
        if header.manifest.is_full() {
            println!("ok   {}: full, {}", path.display(), header.manifest);
        } else {
            println!("ok   {}: {}", path.display(), header.manifest);
            shard_groups
                .entry((header.kind.to_string(), header.fingerprint))
                .or_default()
                .push((path.clone(), col, header));
        }
    }
    // Shard sets must at least be mergeable-or-still-incomplete; overlaps
    // and partition mismatches are hard failures, missing shards a note.
    for ((kind, fingerprint), group) in shard_groups {
        let expected = group[0].2.manifest.count as usize;
        let parts: Vec<_> = group.iter().map(|(_, c, h)| (c.clone(), *h)).collect();
        if group.len() < expected {
            let mut have: Vec<u32> = group.iter().map(|(_, _, h)| h.manifest.index).collect();
            have.sort_unstable();
            println!(
                "note {kind} {fingerprint:016x}: {}/{expected} shards present (have {have:?}) — \
                 corpus not yet assemblable",
                group.len()
            );
            continue;
        }
        match merge_collections(parts) {
            Ok((col, _)) => println!(
                "ok   {kind} {fingerprint:016x}: {expected} shards merge into {} probes",
                col.probes.len()
            ),
            Err(e) => {
                println!("FAIL {kind} {fingerprint:016x}: shard set does not merge: {e}");
                errors += 1;
            }
        }
    }
    if errors > 0 {
        Err(format!("{errors} file(s)/shard set(s) failed verification"))
    } else {
        Ok(())
    }
}

fn merge(args: &[String]) -> Result<(), String> {
    let mut out: Option<PathBuf> = None;
    let mut inputs = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-o" | "--out" => {
                let value = it.next().ok_or("-o needs a path")?;
                out = Some(PathBuf::from(value));
            }
            _ => inputs.push(PathBuf::from(arg)),
        }
    }
    let out = out.ok_or("merge needs -o <out-file>")?;
    if inputs.len() < 2 {
        return Err("merge needs at least two shard files".into());
    }
    let mut parts = Vec::new();
    for path in &inputs {
        let bytes = read_bytes(path)?;
        let (col, header) =
            decode_collection_with(&bytes, None).map_err(|e| format!("{}: {e}", path.display()))?;
        parts.push((col, header));
    }
    let (merged, header) = merge_collections(parts).map_err(|e| e.to_string())?;
    save_collection_with(&out, &merged, &header)
        .map_err(|e| format!("saving {}: {e}", out.display()))?;
    println!(
        "merged {} shards into {} ({} probes x {} run keys, fingerprint {:016x})",
        inputs.len(),
        out.display(),
        merged.probes.len(),
        merged.keys.len(),
        header.fingerprint
    );
    Ok(())
}

/// Why `prune` evicts a file; `None` means the file is kept.
fn stale_reason(path: &Path, bytes: &[u8]) -> Option<String> {
    let header = match read_header(bytes) {
        Ok(h) => h,
        Err(PersistError::Version { found, expected }) => {
            return Some(format!(
                "format version {found} (this build reads {expected})"
            ));
        }
        Err(e) => return Some(format!("unreadable header: {e}")),
    };
    if header.corpus_revision != CORPUS_REVISION {
        return Some(format!(
            "corpus revision {} (this build collects under {CORPUS_REVISION})",
            header.corpus_revision
        ));
    }
    if let Err(e) = decode_collection_with(bytes, None) {
        return Some(format!("corrupt payload: {e}"));
    }
    if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
        if let Some(parsed) = parse_cache_file_name(name) {
            if parsed.fingerprint != header.fingerprint || parsed.kind != header.kind {
                return Some(format!(
                    "stale fingerprint: name says {} {:016x}, header says {} {:016x}",
                    parsed.kind, parsed.fingerprint, header.kind, header.fingerprint
                ));
            }
            let header_shard = (!header.manifest.is_full())
                .then_some((header.manifest.index, header.manifest.count));
            if parsed.shard != header_shard {
                return Some(format!(
                    "stale shard name: name says shard {:?}, header says {}",
                    parsed.shard, header.manifest
                ));
            }
        }
    }
    None
}

fn prune(args: &[String]) -> Result<(), String> {
    let mut dir: Option<PathBuf> = None;
    let mut dry_run = false;
    for arg in args {
        match arg.as_str() {
            "--dry-run" | "-n" => dry_run = true,
            _ if dir.is_none() => dir = Some(PathBuf::from(arg)),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    let dir = dir.ok_or("prune needs a cache directory")?;
    if !dir.is_dir() {
        return Err(format!("{} is not a directory", dir.display()));
    }
    let mut kept = 0usize;
    let mut evicted = 0usize;
    for path in pbcol_files(&dir)? {
        let bytes = read_bytes(&path)?;
        match stale_reason(&path, &bytes) {
            None => kept += 1,
            Some(reason) => {
                evicted += 1;
                if dry_run {
                    println!("would evict {}: {reason}", path.display());
                } else {
                    std::fs::remove_file(&path)
                        .map_err(|e| format!("cannot remove {}: {e}", path.display()))?;
                    println!("evicted {}: {reason}", path.display());
                }
            }
        }
    }
    println!(
        "{} file(s) kept, {} {}",
        kept,
        evicted,
        if dry_run {
            "would be evicted"
        } else {
            "evicted"
        }
    );
    Ok(())
}

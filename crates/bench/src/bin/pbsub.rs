//! `pbsub` — client for the `pbserve` detection service: submit an
//! experiment, tail its progress events, or fetch a cached result.
//!
//! ```text
//! pbsub submit --spec <name> [--addr <host:port>] [--workers <n>]
//!              [--shards <m>] [--max-attempts <k>] [--timeout-secs <s>]
//!              [--hosts <h:p,...>]
//! pbsub fetch  --spec <name> [--addr <host:port>]
//! pbsub status [--addr <host:port>]
//! ```
//!
//! Every event line the server streams is printed verbatim (flat JSON —
//! greppable in CI logs); the exit code reflects the final `done` /
//! `error` event. `--addr` falls back to `PERFBUG_SERVE_ADDR`, then
//! `127.0.0.1:7411`.

use std::process::ExitCode;

use perfbug_bench::specs::{flag_value, parse_num};
use perfbug_core::serve::{self, Request, SubmitRequest};

const USAGE: &str = "pbsub — submit to / query the pbserve detection service

USAGE:
    pbsub submit --spec <name>       collect (or replay) an experiment and
                                     tail its event stream
          [--addr <host:port>]       service address
                                     (default: PERFBUG_SERVE_ADDR, then 127.0.0.1:7411)
          [--workers <n>]            orchestrated worker pool (0 = in-process)
          [--shards <m>]             shard count (0 = server default)
          [--max-attempts <k>]       per-shard retry budget (default 3)
          [--timeout-secs <s>]       per-shard timeout
          [--hosts <h:p,...>]        fan out to pborch worker-daemons
    pbsub fetch  --spec <name> [--addr <host:port>]
                                     serve a cached result, never collect
    pbsub status [--addr <host:port>]
                                     list the store's tenants";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((cmd, rest)) => (cmd.as_str(), rest),
        None => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd {
        "submit" => submit(rest),
        "fetch" => fetch(rest),
        "status" => status(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("pbsub: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn addr_arg(args: &[String]) -> Result<String, String> {
    Ok(match flag_value(args, "--addr")? {
        Some(addr) => addr,
        None => serve::addr_from_env(),
    })
}

fn tail(addr: &str, request: &Request) -> Result<(), String> {
    let outcome = serve::request(addr, request, |line| println!("{line}"))?;
    eprintln!("pbsub: {} ({addr})", outcome.status);
    Ok(())
}

fn submit(args: &[String]) -> Result<(), String> {
    let spec = flag_value(args, "--spec")?.ok_or("--spec <name> is required")?;
    let workers = match flag_value(args, "--workers")? {
        Some(raw) => parse_num(&raw, "--workers")?,
        None => 0,
    };
    let shards = match flag_value(args, "--shards")? {
        Some(raw) => parse_num(&raw, "--shards")?,
        None => 0,
    };
    let max_attempts = match flag_value(args, "--max-attempts")? {
        Some(raw) => parse_num(&raw, "--max-attempts")?,
        None => 3,
    };
    let timeout_secs = match flag_value(args, "--timeout-secs")? {
        Some(raw) => Some(parse_num(&raw, "--timeout-secs")?),
        None => None,
    };
    let request = Request::Submit(SubmitRequest {
        spec,
        workers,
        shards,
        max_attempts,
        timeout_secs,
        hosts: flag_value(args, "--hosts")?,
    });
    tail(&addr_arg(args)?, &request)
}

fn fetch(args: &[String]) -> Result<(), String> {
    let spec = flag_value(args, "--spec")?.ok_or("--spec <name> is required")?;
    tail(&addr_arg(args)?, &Request::Fetch { spec })
}

fn status(args: &[String]) -> Result<(), String> {
    tail(&addr_arg(args)?, &Request::Status)
}

//! Developer tool: measures probe-extraction, trace-generation and
//! simulation throughput per benchmark, cross-design IPC spreads, and the
//! run-level parallel collection engine's throughput (runs/sec) against a
//! serial baseline.
//!
//! ```sh
//! cargo run --release -p perfbug-bench --bin speed_test
//! ```

use std::time::Instant;

use perfbug_core::bugs::BugCatalog;
use perfbug_core::exec;
use perfbug_core::experiment::{collect, CollectionConfig, ProbeScale};
use perfbug_core::stage1::EngineSpec;
use perfbug_ml::{Dataset, Gbt, GbtParams, Regressor, SplitStrategy};
use perfbug_uarch::{simulate_into, BugSpec, ProbeRun};
use perfbug_workloads::Opcode;

fn per_benchmark_simulation() {
    let scale = perfbug_workloads::WorkloadScale::default();
    // One reused ProbeRun: the simulate loop below allocates no rows.
    let mut run = ProbeRun::empty();
    for name in [
        "400.perlbench",
        "403.gcc",
        "426.mcf",
        "433.milc",
        "444.namd",
        "458.sjeng",
        "462.libquantum",
    ] {
        let spec = perfbug_workloads::benchmark(name).unwrap();
        let program = spec.program(&scale);
        let probes = spec.probes(&scale);
        let trace = probes[0].trace(&program);
        let sky = perfbug_uarch::presets::skylake();
        let ivy = perfbug_uarch::presets::ivybridge();
        let k8 = perfbug_uarch::presets::k8();
        let t0 = Instant::now();
        simulate_into(&sky, None, &trace, 1000, &mut run);
        let dt = t0.elapsed();
        let (sky_ipc, sky_cycles, steps) = (run.overall_ipc(), run.total_cycles, run.ipc.len());
        simulate_into(&ivy, None, &trace, 1000, &mut run);
        let (ivy_ipc, ivy_cycles) = (run.overall_ipc(), run.total_cycles);
        simulate_into(&k8, None, &trace, 1000, &mut run);
        let k8_ipc = run.overall_ipc();
        let speedup = (sky_cycles as f64 / 4.0).recip() / (ivy_cycles as f64 / 3.4).recip();
        println!(
            "{name:16} sky ipc {sky_ipc:.2} ivy ipc {ivy_ipc:.2} k8 ipc {k8_ipc:.2} | sky/ivy time-speedup {speedup:.2} | steps {steps} | {:.1} ms/sim",
            dt.as_secs_f64() * 1e3
        );
    }
}

/// The tiny collection configuration shared by the throughput sections.
fn tiny_collect_config(threads: usize) -> CollectionConfig {
    let catalog = BugCatalog::new(vec![
        BugSpec::SerializeOpcode { x: Opcode::Logic },
        BugSpec::L2ExtraLatency { t: 30 },
        BugSpec::MispredictExtraDelay { t: 25 },
    ]);
    let mut config = CollectionConfig::new(
        vec![EngineSpec::Gbt(GbtParams {
            n_trees: 40,
            ..GbtParams::default()
        })],
        catalog,
    );
    config.scale = ProbeScale::tiny();
    config.benchmarks = vec![
        perfbug_workloads::benchmark("458.sjeng").expect("suite"),
        perfbug_workloads::benchmark("462.libquantum").expect("suite"),
    ];
    config.max_probes = Some(8);
    config.threads = threads;
    config
}

/// Times one `collect()` pass and returns (runs simulated, seconds).
fn timed_collect(threads: usize) -> (usize, f64) {
    let config = tiny_collect_config(threads);
    let n_units =
        perfbug_core::experiment::simulation_units_per_probe(&config.partition, &config.catalog);
    let t0 = Instant::now();
    let col = collect(&config);
    let secs = t0.elapsed().as_secs_f64();
    (col.probes.len() * n_units, secs)
}

/// Measures cold collect+save against an evaluation-only replay of the
/// persisted collection, and proves the replay ran zero simulations.
fn replay_throughput() {
    use perfbug_core::persist::{
        cache_file_name, collect_or_load, config_fingerprint, ExperimentKind,
    };

    let config = tiny_collect_config(exec::default_threads());
    let dir = std::env::temp_dir().join(format!("perfbug-speedtest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp cache dir");
    let path = dir.join(cache_file_name(
        "speed-test",
        ExperimentKind::Core,
        config_fingerprint(&config),
    ));
    let _ = std::fs::remove_file(&path);

    println!();
    println!("collection persistence (same tiny scale):");
    let t0 = Instant::now();
    let (cold, _) = collect_or_load(&path, &config).expect("cold collect+save");
    let cold_secs = t0.elapsed().as_secs_f64();
    let sims_before = exec::simulations_run();
    let t1 = Instant::now();
    let (warm, _) = collect_or_load(&path, &config).expect("replay load");
    let warm_secs = t1.elapsed().as_secs_f64();
    let resimulated = exec::simulations_run() - sims_before;
    assert_eq!(warm, cold, "replayed collection must be identical");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!("  cold collect+save:   {cold_secs:8.2}s  ({bytes} bytes on disk)");
    println!(
        "  replay load:         {warm_secs:8.4}s  ({:.0}x faster; re-simulated runs: {resimulated})",
        cold_secs / warm_secs.max(1e-9)
    );
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}

/// Measures a cold collection pass (which builds the `.pbtr` trace
/// cache) against a warm pass replaying the cached traces, and proves
/// the warm pass regenerated zero traces and produced a bit-identical
/// corpus (after timing zeroing).
fn trace_cache_throughput() {
    let config = tiny_collect_config(exec::default_threads());
    let dir = std::env::temp_dir().join(format!("perfbug-speedtest-traces-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var(perfbug_core::tracecache::TRACE_DIR_ENV, &dir);

    println!();
    println!("workload-trace cache (same tiny scale):");
    let regens0 = exec::traces_regenerated();
    let t0 = Instant::now();
    let mut cold = collect(&config);
    let cold_secs = t0.elapsed().as_secs_f64();
    let cold_regens = exec::traces_regenerated() - regens0;
    let regens1 = exec::traces_regenerated();
    let t1 = Instant::now();
    let mut warm = collect(&config);
    let warm_secs = t1.elapsed().as_secs_f64();
    let warm_regens = exec::traces_regenerated() - regens1;
    cold.zero_timings();
    warm.zero_timings();
    assert_eq!(warm, cold, "warm collection must be identical to cold");
    assert_eq!(warm_regens, 0, "a warm pass must regenerate no traces");
    println!("  cold collect:        {cold_secs:8.2}s  (traces regenerated: {cold_regens})");
    println!(
        "  warm collect:        {warm_secs:8.2}s  ({:.2}x faster; traces regenerated: {warm_regens})",
        cold_secs / warm_secs.max(1e-9)
    );
    std::env::remove_var(perfbug_core::tracecache::TRACE_DIR_ENV);
    let _ = std::fs::remove_dir_all(&dir);
}

fn collection_throughput() {
    let threads = exec::default_threads();
    println!();
    println!("collection throughput (tiny scale, GBT-40, 8 probes):");
    let (runs, serial_secs) = timed_collect(1);
    let serial_rps = runs as f64 / serial_secs;
    println!(
        "  threads=1            {runs:4} runs in {serial_secs:6.2}s -> {serial_rps:8.1} runs/sec"
    );
    let (runs, par_secs) = timed_collect(threads);
    let par_rps = runs as f64 / par_secs;
    println!("  threads={threads:<12} {runs:4} runs in {par_secs:6.2}s -> {par_rps:8.1} runs/sec");
    println!("  parallel speedup: {:.2}x", par_rps / serial_rps);
}

/// Times one GBT fit and the resulting training MSE.
fn timed_gbt_fit(data: &Dataset, strategy: SplitStrategy) -> (f64, f64) {
    let mut model = Gbt::new(GbtParams {
        n_trees: 100,
        split_strategy: strategy,
        ..GbtParams::default()
    });
    let t0 = Instant::now();
    model.fit(data, None);
    let secs = t0.elapsed().as_secs_f64();
    let mse = perfbug_ml::metrics::mse(&model.predict(data.x()), data.y());
    (secs, mse)
}

/// Exact vs histogram GBT split finding on a stage-1-shaped training set.
fn gbt_split_throughput() {
    let (n, f) = (4000, 24);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..f)
                .map(|j| ((i * (j + 3)) as f64 * 0.0137).sin())
                .collect()
        })
        .collect();
    let y: Vec<f64> = rows
        .iter()
        .map(|r| (r[0] + 0.5 * r[f / 2] - r[f - 1]).tanh())
        .collect();
    let data = Dataset::from_rows(&rows, &y).expect("aligned");
    println!();
    println!("GBT split finding ({n}x{f}, 100 trees, depth 4):");
    let (exact_secs, exact_mse) = timed_gbt_fit(&data, SplitStrategy::Exact);
    println!("  exact:               {exact_secs:8.2}s  (train mse {exact_mse:.2e})");
    let (hist_secs, hist_mse) = timed_gbt_fit(&data, SplitStrategy::Histogram { max_bins: 255 });
    println!(
        "  histogram (255 bins):{hist_secs:9.2}s  (train mse {hist_mse:.2e}; {:.1}x faster)",
        exact_secs / hist_secs.max(1e-9)
    );
}

fn main() {
    per_benchmark_simulation();
    gbt_split_throughput();
    collection_throughput();
    replay_throughput();
    trace_cache_throughput();
}

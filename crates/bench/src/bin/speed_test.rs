//! Developer tool: measures probe-extraction, trace-generation and
//! simulation throughput per benchmark, plus cross-design IPC spreads.
//!
//! ```sh
//! cargo run --release -p perfbug-bench --bin speed_test
//! ```

use std::time::Instant;
fn main() {
    let scale = perfbug_workloads::WorkloadScale::default();
    for name in ["400.perlbench", "403.gcc", "426.mcf", "433.milc", "444.namd", "458.sjeng", "462.libquantum"] {
        let spec = perfbug_workloads::benchmark(name).unwrap();
        let program = spec.program(&scale);
        let probes = spec.probes(&scale);
        let trace = probes[0].trace(&program);
        let sky = perfbug_uarch::presets::skylake();
        let ivy = perfbug_uarch::presets::ivybridge();
        let k8 = perfbug_uarch::presets::k8();
        let t0 = Instant::now();
        let rs = perfbug_uarch::simulate(&sky, None, &trace, 1000);
        let dt = t0.elapsed();
        let ri = perfbug_uarch::simulate(&ivy, None, &trace, 1000);
        let rk = perfbug_uarch::simulate(&k8, None, &trace, 1000);
        let speedup = (rs.total_cycles as f64 / 4.0).recip() / (ri.total_cycles as f64 / 3.4).recip();
        println!("{name:16} sky ipc {:.2} ivy ipc {:.2} k8 ipc {:.2} | sky/ivy time-speedup {:.2} | steps {} | {:.1} ms/sim",
            rs.overall_ipc(), ri.overall_ipc(), rk.overall_ipc(), speedup, rs.ipc.len(), dt.as_secs_f64()*1e3);
    }
}

//! `pbserve` — the always-on detection service daemon.
//!
//! Accepts experiment submissions as deterministic flat-JSON lines over
//! TCP (`perfbug_core::serve`), maintains a multi-tenant corpus store
//! keyed by config fingerprint (`<store>/<fingerprint:016x>/`, each
//! tenant an ordinary cache directory `pbcol` can verify and prune),
//! streams progress events plus the standard `orchrun.json` report
//! schema back to the submitting client, and serves repeat submissions
//! straight from cache — **zero simulations** on a hit, which is the
//! property CI's service smoke asserts.
//!
//! ```text
//! pbserve [--listen <host:port>] [--store <dir>]
//! pbserve worker --spec <name> --cache-dir <dir> --shard <i>/<n>   (internal)
//! ```
//!
//! `--listen` falls back to `PERFBUG_SERVE_ADDR` (default
//! `127.0.0.1:7411`), `--store` to `PERFBUG_SERVE_STORE` (required).
//! Orchestrated submissions (`workers >= 1`) re-invoke this binary in
//! `worker` mode per shard; submissions carrying `hosts` fan out to
//! `pborch worker-daemon` endpoints instead. Submit with `pbsub`.

use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;

use perfbug_bench::specs::{flag_value, run_worker, BenchBackend};
use perfbug_core::serve::{self, ServeOptions, ServeStore};

const USAGE: &str = "pbserve — detection service daemon (multi-tenant corpus store over TCP)

USAGE:
    pbserve [--listen <host:port>]  address to serve on
                                    (default: PERFBUG_SERVE_ADDR, then 127.0.0.1:7411)
            [--store <dir>]         multi-tenant store root
                                    (default: PERFBUG_SERVE_STORE; required)
    pbserve worker --spec <name> --cache-dir <dir> --shard <i>/<n>
                                    (internal: one shard worker's turn)

Protocol: one flat-JSON request line in, flat-JSON event lines out
(accepted, cache-hit, collecting, report, done | error); see
docs/ARCHITECTURE.md. Submit and tail with `pbsub`.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some((cmd, rest)) = args.split_first() {
        match cmd.as_str() {
            "worker" => {
                return match run_worker(rest) {
                    Ok(()) => ExitCode::SUCCESS,
                    Err(msg) => {
                        eprintln!("pbserve worker: {msg}");
                        ExitCode::FAILURE
                    }
                };
            }
            "help" | "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => {}
        }
    }
    match serve_main(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("pbserve: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn serve_main(args: &[String]) -> Result<(), String> {
    let addr = match flag_value(args, "--listen")? {
        Some(addr) => addr,
        None => serve::addr_from_env(),
    };
    let store_root = match flag_value(args, "--store")? {
        Some(dir) => std::path::PathBuf::from(dir),
        None => serve::store_from_env()
            .ok_or("--store <dir> is required (or set PERFBUG_SERVE_STORE)")?,
    };
    std::fs::create_dir_all(&store_root)
        .map_err(|e| format!("cannot create store {}: {e}", store_root.display()))?;
    let listener = TcpListener::bind(&addr).map_err(|e| format!("cannot listen on {addr}: {e}"))?;
    let bound = listener.local_addr().map(|a| a.to_string()).unwrap_or(addr);
    println!(
        "pbserve listening on {bound} (store {})",
        store_root.display()
    );
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    let backend = BenchBackend { exe };
    serve::serve(
        listener,
        Arc::new(backend),
        ServeStore::new(store_root),
        ServeOptions::default(),
    )
    .map_err(|e| format!("serve loop: {e}"))
}

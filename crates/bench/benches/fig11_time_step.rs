//! Figure 11 — effect of the counter-sampling time-step size.
//!
//! Paper shape: coarser steps make IPC inference *easier* (average MSE
//! falls) but bug detection *worse* (TPR and FPR degrade) — sensitivity to
//! bugs matters more than raw accuracy, confirming the small default step.
//! Our default step (1 000 cycles) stands in for the paper's 500 k; the
//! sweep uses the same x1/x2/x3/x4 ratios.

use perfbug_bench::{banner, gbt250};
use perfbug_core::experiment::{evaluate_two_stage, CaptureSpec};
use perfbug_core::report::Table;
use perfbug_core::stage2::Stage2Params;
use perfbug_ml::metrics::mse;

fn main() {
    banner(
        "Figure 11",
        "Effect of time-step size (x1..x4 of the default)",
    );
    let mut table = Table::new(vec![
        "step (cycles)",
        "avg MSE (bug-free Set IV)",
        "TPR",
        "FPR",
    ]);
    for factor in 1..=4u64 {
        let mut config = perfbug_bench::base_config(vec![gbt250()], 12);
        config.scale.step_cycles = 1000 * factor;
        // Capture bug-free Set-IV series to compute a step-comparable MSE
        // (Eq.-1 areas are not comparable across step sizes).
        let probe_ids: Vec<String> = {
            let mut ids = Vec::new();
            for b in &config.benchmarks {
                for p in b.probes(&config.scale.workload) {
                    ids.push(p.id());
                }
            }
            ids
        };
        config.captures = probe_ids
            .iter()
            .flat_map(|id| {
                ["Skylake", "K8"].into_iter().map(|arch| CaptureSpec {
                    probe_id: id.clone(),
                    arch: arch.to_string(),
                    bug: None,
                })
            })
            .collect();
        println!(
            "collecting at step = {} cycles...",
            config.scale.step_cycles
        );
        let col = perfbug_bench::collect_cached("fig11", &config);
        let mut mses = Vec::new();
        for c in &col.captures {
            if !c.simulated.is_empty() {
                mses.push(mse(&c.inferred, &c.simulated));
            }
        }
        let avg_mse = mses.iter().sum::<f64>() / mses.len().max(1) as f64;
        let eval = evaluate_two_stage(&col, 0, Stage2Params::default());
        table.row(vec![
            format!("{}", 1000 * factor),
            format!("{avg_mse:.4}"),
            format!("{:.2}", eval.metrics.tpr),
            format!("{:.2}", eval.metrics.fpr),
        ]);
    }
    println!("{}", table.render());
    println!("expected shape: MSE falls with coarser steps while detection degrades.");
}

//! Figure 6 — GBT-250 IPC estimation on bug-free vs buggy designs.
//!
//! Paper shape: on the bug-free design the inferred series hugs the
//! simulated one; with the bug inserted the model keeps predicting
//! bug-free-looking IPC while the simulated IPC drops, so the Eq. (1)
//! error inflates drastically.

use perfbug_bench::{banner, gbt250};
use perfbug_core::bugs::BugCatalog;
use perfbug_core::experiment::{collect, CaptureSpec};
use perfbug_core::stage1::inference_error;
use perfbug_uarch::BugSpec;
use perfbug_workloads::{benchmark, Opcode};

fn main() {
    banner(
        "Figure 6",
        "GBT-250 inference: bug-free vs Bug 1 (XOR-dense gcc probe, bzip2 probe)",
    );
    let bug1 = BugSpec::IssueOnlyIfOldest { x: Opcode::Xor };
    let mut config = perfbug_bench::base_config(vec![gbt250()], 0);
    config.catalog = BugCatalog::new(vec![bug1]);
    config.benchmarks = vec![
        benchmark("403.gcc").expect("suite"),
        benchmark("401.bzip2").expect("suite"),
    ];
    // Find the XOR-dense gcc probe (the paper's "#12") dynamically, plus a
    // bzip2 probe as the mild-contrast case.
    let gcc_dense = {
        let spec = benchmark("403.gcc").expect("suite");
        let program = spec.program(&config.scale.workload);
        let probes = spec.probes(&config.scale.workload);
        probes
            .iter()
            .max_by(|a, b| {
                let xor = |p: &perfbug_workloads::Probe| {
                    let t = p.trace(&program);
                    t.iter().filter(|i| i.opcode == Opcode::Xor).count() as f64 / t.len() as f64
                };
                xor(a).partial_cmp(&xor(b)).expect("finite")
            })
            .expect("gcc has probes")
            .id()
    };
    let targets = [gcc_dense, "401.bzip2#2".to_string()];
    config.max_probes = Some(42); // all probes of both benchmarks
    let targets: Vec<&str> = targets.iter().map(String::as_str).collect();
    config.captures = targets
        .iter()
        .flat_map(|id| {
            [
                CaptureSpec {
                    probe_id: id.to_string(),
                    arch: "Skylake".into(),
                    bug: None,
                },
                CaptureSpec {
                    probe_id: id.to_string(),
                    arch: "Skylake".into(),
                    bug: Some(0),
                },
            ]
        })
        .collect();

    println!("collecting (gcc + bzip2, Bug 1 = 'if XOR is oldest, issue only XOR')...");
    let col = collect(&config);

    for id in &targets {
        for bug in [None, Some(0usize)] {
            let Some(c) = col
                .captures
                .iter()
                .find(|c| &c.probe_id == id && c.bug == bug && c.arch == "Skylake")
            else {
                println!("(capture {id} bug={bug:?} missing at this scale)");
                continue;
            };
            let label = if bug.is_some() { "Bug 1" } else { "Bug-Free" };
            let delta = inference_error(&c.simulated, &c.inferred);
            println!("\n--- {id} on Skylake ({label}), Eq.(1) error = {delta:.3} ---");
            println!("{:>6} {:>12} {:>12}", "step", "Simulation", "ML Inference");
            for t in 0..c.simulated.len() {
                println!("{:>6} {:>12.4} {:>12.4}", t, c.simulated[t], c.inferred[t]);
            }
        }
    }
    println!("\nexpected shape: per-probe Eq.(1) error much larger with the bug inserted.");
}

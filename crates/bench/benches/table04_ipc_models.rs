//! Table IV — IPC modelling runtime and error statistics per ML engine.
//!
//! Paper shape: Lasso fastest to train but worst errors; LSTMs slowest
//! with occasional non-convergent outliers (huge mean, sane median);
//! MLPs and GBTs accurate, with GBT cheap to train; GBT-250 best overall.

use perfbug_bench::{banner, bench_scale, cnn, gbt150, gbt250, lasso, lstm, mlp, BenchScale};
use perfbug_core::bugs::BugCatalog;
use perfbug_core::experiment::bugfree_test_errors;
use perfbug_core::report::{stats, Table};
use perfbug_uarch::BugSpec;

fn main() {
    banner(
        "Table IV",
        "IPC modelling runtime and inference-error statistics",
    );
    let engines = vec![
        lasso(),
        lstm(1, 150, 16),
        lstm(1, 250, 24),
        lstm(1, 500, 32),
        lstm(4, 150, 16),
        cnn(1, 150, 32),
        cnn(4, 150, 32),
        mlp(1, 500, 64),
        mlp(1, 2500, 160),
        mlp(4, 500, 48),
        gbt150(),
        gbt250(),
    ];
    // The error statistics are measured on bug-free Set-IV runs; a minimal
    // one-bug catalogue keeps the collection shape valid and cheap.
    let mut config = perfbug_bench::base_config(
        engines,
        match bench_scale() {
            BenchScale::Quick => 14,
            BenchScale::Paper => 190,
        },
    );
    config.catalog = BugCatalog::new(vec![BugSpec::MispredictExtraDelay { t: 10 }]);

    println!(
        "training {} engines on {} probes (shared simulations)...",
        config.engines.len(),
        config
            .max_probes
            .map_or("all".to_string(), |n| n.to_string())
    );
    let col = perfbug_bench::collect_cached("table04", &config);

    let mut table = Table::new(vec![
        "ML Model",
        "Training",
        "Inference",
        "Average",
        "Std. Dev.",
        "Median",
        "90th Perc.",
    ]);
    for (e, engine) in col.engines.iter().enumerate() {
        let errors = bugfree_test_errors(&col, e);
        let (mean, std, median, p90) = stats(&errors);
        table.row(vec![
            engine.name.clone(),
            format!("{:.1?}", engine.train_time),
            format!("{:.1?}", engine.infer_time),
            format!("{mean:.4}"),
            format!("{std:.4}"),
            format!("{median:.4}"),
            format!("{p90:.4}"),
        ]);
    }
    println!("{}", table.render());
    println!("expected shape: Lasso fastest/worst; LSTM slowest (outlier-prone);");
    println!("MLP and GBT accurate with GBT far cheaper to train.");
}

//! Figure 1 — Speedup of Skylake simulation with and without performance
//! bugs, normalised against Ivybridge simulation.
//!
//! Paper shape: bug-free Skylake ≈ 1.7x Ivybridge; both bug cases stay
//! well above Ivybridge (the generation gap hides the bugs), with Bug 1
//! (< 1 % average) nearly indistinguishable from bug-free and Bug 2
//! costing a few percent.

use perfbug_bench::{banner, bench_scale, BenchScale};
use perfbug_core::report::Table;
use perfbug_uarch::{presets, simulate, BugSpec};
use perfbug_workloads::{benchmark, Opcode, WorkloadScale};

fn main() {
    banner(
        "Figure 1",
        "Skylake vs Ivybridge speedup, bug-free and with bugs 1/2",
    );
    let benchmarks = [
        "400.perlbench",
        "401.bzip2",
        "403.gcc",
        "433.milc",
        "436.cactusADM",
        "444.namd",
        "450.soplex",
        "458.sjeng",
    ];
    // Bug 1: "If XOR is oldest in IQ, issue only XOR" (low impact);
    // Bug 2: an instruction class incorrectly marked as synchronising
    // (moderate impact). The paper serialises `sub`; our synthetic
    // workloads are far denser in sub than SPEC, so `shift` reproduces the
    // intended few-percent severity (see EXPERIMENTS.md).
    let bug1 = BugSpec::IfOldestIssueOnlyX { x: Opcode::Xor };
    let bug2 = BugSpec::SerializeOpcode { x: Opcode::Shift };

    let scale = WorkloadScale::default();
    let prefix_intervals: usize = match bench_scale() {
        BenchScale::Quick => 6,
        BenchScale::Paper => 24,
    };
    let ivy = presets::ivybridge();
    let sky = presets::skylake();

    let mut table = Table::new(vec![
        "benchmark",
        "Ivybridge (Bug-Free)",
        "Skylake (Bug-Free)",
        "Skylake (Bug 1)",
        "Skylake (Bug 2)",
    ]);
    let mut geo = [0.0f64; 4];
    for name in benchmarks {
        let spec = benchmark(name).expect("suite benchmark");
        let trace = {
            let program = spec.program(&scale);
            program
                .walker()
                .take_trace(prefix_intervals * scale.interval_len)
        };
        // Wall-time model: cycles / clock. Speedups vs Ivybridge.
        let time = |cfg: &perfbug_uarch::MicroarchConfig, bug: Option<BugSpec>| -> f64 {
            simulate(cfg, bug, &trace, 1000).total_cycles as f64 / cfg.clock_ghz
        };
        let t_ivy = time(&ivy, None);
        let speedups = [
            1.0,
            t_ivy / time(&sky, None),
            t_ivy / time(&sky, Some(bug1)),
            t_ivy / time(&sky, Some(bug2)),
        ];
        for (g, s) in geo.iter_mut().zip(&speedups) {
            *g += s.ln();
        }
        table.row(vec![
            name.to_string(),
            format!("{:.2}", speedups[0]),
            format!("{:.2}", speedups[1]),
            format!("{:.2}", speedups[2]),
            format!("{:.2}", speedups[3]),
        ]);
    }
    let n = benchmarks.len() as f64;
    table.row(vec![
        "Geometric Mean".to_string(),
        format!("{:.2}", (geo[0] / n).exp()),
        format!("{:.2}", (geo[1] / n).exp()),
        format!("{:.2}", (geo[2] / n).exp()),
        format!("{:.2}", (geo[3] / n).exp()),
    ]);
    println!("{}", table.render());
    println!("expected shape: Skylake bug-free > both bug cases > Ivybridge (1.0),");
    println!("with Bug 1 within ~1% of bug-free and Bug 2 a few percent below it.");
}

//! Figure 9 — effect of removing probes on detection quality.
//!
//! Paper shape: quality degrades slowly as probes are removed (TPR falls
//! or FPR rises), whether removal is by highest-IPC-inference-error first
//! or random — the methodology is robust down to a few dozen probes.

use perfbug_bench::{banner, bench_scale, gbt250, BenchScale};
use perfbug_core::experiment::{bugfree_test_errors, evaluate_two_stage_subset};
use perfbug_core::report::Table;
use perfbug_core::stage2::Stage2Params;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    banner(
        "Figure 9",
        "TPR/FPR vs number of probes (by-error and random removal)",
    );
    let quick = matches!(bench_scale(), BenchScale::Quick);
    let config = perfbug_bench::base_config(vec![gbt250()], if quick { 30 } else { 190 });
    println!(
        "collecting {} probes...",
        config.max_probes.map_or("190".into(), |n| n.to_string())
    );
    let col = perfbug_bench::collect_cached("fig09", &config);
    let n = col.probes.len();
    let step = if quick { 5 } else { 15 };

    // Order 1: remove highest-error probes first (the probes the stage-1
    // model learned worst, measured on bug-free Set-IV runs).
    let mut per_probe_err: Vec<(usize, f64)> = {
        let flat = bugfree_test_errors(&col, 0);
        let runs = flat.len() / n;
        (0..n)
            .map(|p| {
                let sum: f64 = (0..runs).map(|r| flat[r * n + p]).sum();
                (p, sum / runs as f64)
            })
            .collect()
    };
    per_probe_err.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    let by_error_keep: Vec<usize> = per_probe_err.iter().map(|(p, _)| *p).collect();

    // Order 2: random removal.
    let mut random_keep: Vec<usize> = (0..n).collect();
    random_keep.shuffle(&mut rand::rngs::StdRng::seed_from_u64(99));

    let mut table = Table::new(vec![
        "probes",
        "ByError TPR",
        "ByError FPR",
        "Random TPR",
        "Random FPR",
    ]);
    let mut count = n;
    while count >= step {
        let mut cells = vec![count.to_string()];
        for order in [&by_error_keep, &random_keep] {
            let subset: Vec<usize> = order[..count].to_vec();
            let eval = evaluate_two_stage_subset(&col, 0, Stage2Params::default(), &subset);
            cells.push(format!("{:.2}", eval.metrics.tpr));
            cells.push(format!("{:.2}", eval.metrics.fpr));
        }
        table.row(cells);
        count -= step;
    }
    println!("{}", table.render());
    println!("expected shape: slow degradation as probes are removed, for both orders.");
}

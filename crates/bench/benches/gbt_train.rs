//! Criterion benchmark of GBT stage-1 training: exact greedy split finding
//! against histogram split finding on a paper-shaped dataset.
//!
//! The paper's best engine is GBT-250 (250 trees, depth 4); at paper scale
//! a probe's training set easily reaches tens of thousands of step rows
//! over ~30 selected counters. The exact splitter re-sorts every feature
//! column at every node (`O(rows log rows · features)` per node); the
//! histogram splitter bins once per fit and scans at most `max_bins` bins
//! per feature per node. The acceptance bar for the histogram engine is a
//! ≥ 3x win on this shape (see `docs/ENGINES.md` for recorded numbers).
//!
//! The exact fit takes tens of seconds at this shape — `sample_size(1)`
//! keeps the benchmark runnable (one warm-up plus one timed fit per
//! strategy). Run with:
//!
//! ```sh
//! cargo bench -p perfbug-bench --bench gbt_train
//! ```

use criterion::{criterion_group, criterion_main, Criterion};

use perfbug_ml::{BinnedDataset, Dataset, Gbt, GbtParams, Regressor, SplitStrategy};

/// Paper-shaped stage-1 training data: `n` step rows of `f` selected
/// counters with a nonlinear counters -> IPC target.
fn stage1_shaped(n: usize, f: usize) -> Dataset {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..f)
                .map(|j| ((i * (j + 3)) as f64 * 0.0137).sin() + ((i / 7 + j) as f64 * 0.011).cos())
                .collect()
        })
        .collect();
    let y: Vec<f64> = rows
        .iter()
        .map(|r| (r[0] * 1.3 + r[f / 2] * 0.7 + r[f - 1]).tanh() + 0.8)
        .collect();
    Dataset::from_rows(&rows, &y).expect("aligned")
}

fn params(strategy: SplitStrategy) -> GbtParams {
    GbtParams {
        n_trees: 250,
        max_depth: 4,
        split_strategy: strategy,
        ..GbtParams::default()
    }
}

fn bench_gbt_train(c: &mut Criterion) {
    let data = stage1_shaped(10_000, 30);
    c.bench_function("gbt250_train_histogram_10000x30", |b| {
        b.iter(|| {
            let mut m = Gbt::new(params(SplitStrategy::Histogram { max_bins: 255 }));
            m.fit(&data, None);
            m.n_trees()
        })
    });
    c.bench_function("gbt250_train_exact_10000x30", |b| {
        b.iter(|| {
            let mut m = Gbt::new(params(SplitStrategy::Exact));
            m.fit(&data, None);
            m.n_trees()
        })
    });
    // The once-per-fit quantisation cost in isolation.
    c.bench_function("binned_dataset_build_10000x30", |b| {
        b.iter(|| BinnedDataset::from_dataset(&data, 255).n_features())
    });
}

criterion_group!(
    name = gbt;
    config = Criterion::default().sample_size(1);
    targets = bench_gbt_train
);
criterion_main!(gbt);

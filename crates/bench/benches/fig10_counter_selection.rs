//! Figure 10 — automatic vs manual counter selection.
//!
//! Paper shape: the automatic two-step Pearson selection beats the fixed
//! manual 22-counter list on both engines (higher TPR, no worse FPR). In
//! this reproduction the manual list contains per-stage instruction
//! counts, which in a trace-driven substrate track IPC through bugs and
//! blunt the detector — the same qualitative failure mode.

use perfbug_bench::{banner, gbt250, lstm};
use perfbug_core::counter_select::{manual_counter_indices, CounterMode};
use perfbug_core::experiment::evaluate_two_stage;
use perfbug_core::report::Table;
use perfbug_core::stage2::Stage2Params;

fn main() {
    banner(
        "Figure 10",
        "Effect of counter selection method (automatic vs manual)",
    );
    let engines = || vec![gbt250(), lstm(1, 500, 24)];
    let mut table = Table::new(vec!["configuration", "TPR", "FPR"]);
    for (label, mode) in [
        ("Our method", CounterMode::default()),
        ("Manual", CounterMode::Manual(manual_counter_indices())),
    ] {
        let mut config = perfbug_bench::base_config(engines(), 12);
        config.counter_mode = mode;
        println!("collecting with {label} counter selection...");
        let col = perfbug_bench::collect_cached("fig10", &config);
        for (e, engine) in col.engines.iter().enumerate() {
            let eval = evaluate_two_stage(&col, e, Stage2Params::default());
            table.row(vec![
                format!("{} ({label})", engine.name),
                format!("{:.2}", eval.metrics.tpr),
                format!("{:.2}", eval.metrics.fpr),
            ]);
        }
    }
    println!("{}", table.render());
    println!("expected shape: automatic selection detects more at no higher FPR.");
}

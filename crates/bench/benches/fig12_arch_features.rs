//! Figure 12 — effect of the microarchitecture design-parameter features.
//!
//! Paper shape: removing the static design features barely changes GBT-250
//! and slightly reduces the LSTM's detections — counter data alone carries
//! most of the information.

use perfbug_bench::{banner, gbt250, lstm};
use perfbug_core::experiment::evaluate_two_stage;
use perfbug_core::report::Table;
use perfbug_core::stage2::Stage2Params;

fn main() {
    banner(
        "Figure 12",
        "Effect of design-parameter features (on vs off)",
    );
    let engines = || vec![gbt250(), lstm(1, 500, 24)];
    let mut table = Table::new(vec!["configuration", "TPR", "FPR"]);
    for (label, on) in [("Arch Feat.", true), ("No Arch Feat.", false)] {
        let mut config = perfbug_bench::base_config(engines(), 12);
        config.arch_features = on;
        println!("collecting with design features {label}...");
        let col = perfbug_bench::collect_cached("fig12", &config);
        for (e, engine) in col.engines.iter().enumerate() {
            let eval = evaluate_two_stage(&col, e, Stage2Params::default());
            table.row(vec![
                format!("{} ({label})", engine.name),
                format!("{:.2}", eval.metrics.tpr),
                format!("{:.2}", eval.metrics.fpr),
            ]);
        }
    }
    println!("{}", table.render());
    println!("expected shape: small deltas only — counters dominate the signal.");
}

//! Table V — bug-detection results: the single-stage baseline vs the
//! two-stage methodology across stage-1 engines, plus the rows where a bug
//! lurks in the presumed-bug-free training designs.
//!
//! Paper shape: GBT-250 is the best stage-1 engine (highest TPR at zero
//! FPR, precision 1.0, top ROC AUC), beating the single-stage baseline;
//! TPR rises with severity; training on silently-buggy designs degrades
//! detection and introduces false positives.

use perfbug_bench::{banner, cnn, gbt150, gbt250, lasso, lstm, mlp, severity_cells};
use perfbug_core::baseline::BaselineParams;
use perfbug_core::experiment::{evaluate_baseline, evaluate_two_stage};
use perfbug_core::report::Table;
use perfbug_core::stage2::Stage2Params;
use perfbug_core::DetectionMetrics;
use perfbug_uarch::BugSpec;
use perfbug_workloads::Opcode;

fn row(table: &mut Table, training: &str, name: &str, m: &DetectionMetrics) {
    let sev = severity_cells(m);
    table.row(vec![
        training.to_string(),
        name.to_string(),
        format!("{:.2}", m.fpr),
        format!("{:.2}", m.tpr),
        format!("{:.2}", m.roc_auc),
        format!("{:.2}", m.precision),
        sev[3].clone(),
        sev[2].clone(),
        sev[1].clone(),
        sev[0].clone(),
    ]);
}

fn main() {
    banner(
        "Table V",
        "Bug detection results (leave-one-bug-type-out, Set IV)",
    );
    let engines = vec![
        lasso(),
        lstm(1, 500, 24),
        cnn(1, 150, 32),
        mlp(1, 500, 64),
        gbt150(),
        gbt250(),
    ];
    let config = perfbug_bench::base_config(engines, 20);
    println!(
        "collecting {} probes x {} bug variants (this is the expensive pass)...",
        config
            .max_probes
            .map_or("all".to_string(), |n| n.to_string()),
        config.catalog.len()
    );
    let col = perfbug_bench::collect_cached("table05", &config);

    let mut table = Table::new(vec![
        "Training",
        "Stage-1 model",
        "FPR",
        "TPR",
        "ROC AUC",
        "Precision",
        "High",
        "Medium",
        "Low",
        "Very Low",
    ]);

    // Single-stage baseline (§II).
    let baseline_eval = evaluate_baseline(&col, &BaselineParams::default());
    row(
        &mut table,
        "NoBug",
        "Single-stage baseline",
        &baseline_eval.metrics,
    );

    // The two-stage methodology per engine.
    for (e, engine) in col.engines.iter().enumerate() {
        let eval = evaluate_two_stage(&col, e, Stage2Params::default());
        row(&mut table, "NoBug", &engine.name, &eval.metrics);
    }

    // Rows with a bug hidden in the presumed-bug-free training designs
    // (the paper's Bug 1 / Bug 2 rows, GBT-250 only).
    let presumed = [
        ("Bug1", BugSpec::IfOldestIssueOnlyX { x: Opcode::Xor }),
        (
            "Bug2",
            BugSpec::OpcodeUsesRegDelay {
                x: Opcode::Add,
                r: 0,
                t: 10,
            },
        ),
    ];
    for (label, bug) in presumed {
        let mut config = perfbug_bench::base_config(vec![gbt250()], 10);
        config.presumed_bugfree_bug = Some(bug);
        println!("re-collecting with {label} hidden in the training designs...");
        let col = perfbug_bench::collect_cached("table05", &config);
        let eval = evaluate_two_stage(&col, 0, Stage2Params::default());
        row(&mut table, label, "GBT-250", &eval.metrics);
    }

    println!("{}", table.render());
    println!("expected shape: GBT-250 best (zero FPR, precision 1.0, top AUC);");
    println!("TPR monotone in severity; buggy-training rows degraded with FPR > 0.");
}

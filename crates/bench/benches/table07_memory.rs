//! Table VII — bug detection in cache memory systems (§IV-D / §V-I).
//!
//! Paper shape: with GBT stage-1 models both IPC- and AMAT-target
//! detection reach 100 % TPR at zero FPR; the LSTM misses only Very-Low
//! AMAT-impact bugs.

use perfbug_bench::{banner, bench_scale, gbt250, lstm, severity_cells, BenchScale};
use perfbug_core::experiment::evaluate_two_stage;
use perfbug_core::memory::{MemCollectionConfig, TargetMetric};
use perfbug_core::report::Table;
use perfbug_core::stage2::Stage2Params;

fn main() {
    banner(
        "Table VII",
        "Bug detection in memory systems (IPC and AMAT targets)",
    );
    let mut table = Table::new(vec![
        "Stage-1 metric",
        "Stage-1 model",
        "FPR",
        "TPR",
        "Precision",
        "High",
        "Medium",
        "Low",
        "Very Low",
    ]);
    for metric in [TargetMetric::Ipc, TargetMetric::Amat] {
        let mut config = MemCollectionConfig::new(vec![lstm(1, 500, 24), gbt250()], metric);
        if matches!(bench_scale(), BenchScale::Quick) {
            config.max_probes = Some(12);
        }
        println!("collecting memory probes with {} target...", metric.label());
        let col = perfbug_bench::collect_memory_cached("table07", &config);
        for (e, engine) in col.engines.iter().enumerate() {
            let eval = evaluate_two_stage(&col, e, Stage2Params::default());
            let sev = severity_cells(&eval.metrics);
            table.row(vec![
                metric.label().to_string(),
                engine.name.clone(),
                format!("{:.2}", eval.metrics.fpr),
                format!("{:.2}", eval.metrics.tpr),
                format!("{:.2}", eval.metrics.precision),
                sev[3].clone(),
                sev[2].clone(),
                sev[1].clone(),
                sev[0].clone(),
            ]);
        }
    }
    println!("{}", table.render());
    println!("expected shape: GBT near-perfect on both metrics; LSTM weaker on the");
    println!("lowest-impact bugs — the methodology transfers beyond the core.");
}

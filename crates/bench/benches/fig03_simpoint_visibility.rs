//! Figure 3 — per-SimPoint IPC of 403.gcc under Bug 1, relative to the
//! bug-free design.
//!
//! Paper shape: although the whole-application impact is < 1 %, one
//! SimPoint (the XOR-dense one) degrades by over 20 %, making the bug
//! visible at probe granularity.

use perfbug_bench::banner;
use perfbug_core::report::Table;
use perfbug_uarch::{presets, simulate, BugSpec};
use perfbug_workloads::{benchmark, Opcode, WorkloadScale};

fn main() {
    banner(
        "Figure 3",
        "IPC by SimPoint in 403.gcc, bug-free vs Bug 1 (Skylake)",
    );
    // The paper's Bug 1 restricts XOR scheduling. On this substrate the
    // probe-visible variant of that defect is "XOR issues only when
    // oldest" (same type family, §IV-C bug 2): invisible at application
    // level, drastic on the XOR-dense SimPoint.
    let bug1 = BugSpec::IssueOnlyIfOldest { x: Opcode::Xor };
    let scale = WorkloadScale::default();
    let spec = benchmark("403.gcc").expect("suite benchmark");
    let program = spec.program(&scale);
    let probes = spec.probes(&scale);
    let sky = presets::skylake();

    let mut table = Table::new(vec![
        "simpoint",
        "weight",
        "xor-frac",
        "bug-free IPC",
        "bug IPC",
        "relative",
    ]);
    let mut weighted_base = 0.0;
    let mut weighted_bug = 0.0;
    let mut worst: (String, f64) = (String::new(), 1.0);
    for probe in &probes {
        let trace = probe.trace(&program);
        let xor =
            trace.iter().filter(|i| i.opcode == Opcode::Xor).count() as f64 / trace.len() as f64;
        let base = simulate(&sky, None, &trace, 1000).overall_ipc();
        let buggy = simulate(&sky, Some(bug1), &trace, 1000).overall_ipc();
        let rel = buggy / base;
        weighted_base += probe.weight * base;
        weighted_bug += probe.weight * buggy;
        if rel < worst.1 {
            worst = (probe.id(), rel);
        }
        table.row(vec![
            probe.id(),
            format!("{:.3}", probe.weight),
            format!("{:.2}%", xor * 100.0),
            format!("{base:.3}"),
            format!("{buggy:.3}"),
            format!("{rel:.3}"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "whole-application (SimPoint-weighted) impact: {:.2}%",
        (1.0 - weighted_bug / weighted_base) * 100.0
    );
    println!(
        "worst single SimPoint: {} at {:.1}% of bug-free IPC",
        worst.0,
        worst.1 * 100.0
    );
    println!("expected shape: overall impact small; one XOR-dense SimPoint hit much harder.");
}

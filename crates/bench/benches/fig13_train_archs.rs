//! Figure 13 — effect of the number of training microarchitectures.
//!
//! Paper shape: shrinking the training sets (dropping artificial designs)
//! hurts detection — the artificial designs are necessary data
//! augmentation for separating microarchitectural variation from bugs.

use perfbug_bench::{banner, gbt250};
use perfbug_core::experiment::{evaluate_two_stage, ArchPartition};
use perfbug_core::report::Table;
use perfbug_core::stage2::Stage2Params;

fn main() {
    banner(
        "Figure 13",
        "All vs reduced training microarchitectures (GBT-250)",
    );
    let mut table = Table::new(vec!["configuration", "sets I/II/III", "TPR", "FPR"]);
    for (label, partition) in [
        ("All Samples", ArchPartition::paper()),
        ("Reduced Samples", ArchPartition::reduced()),
    ] {
        let sizes = format!(
            "{}/{}/{}",
            partition.train.len(),
            partition.val.len(),
            partition.stage2_extra.len()
        );
        let mut config = perfbug_bench::base_config(vec![gbt250()], 12);
        config.partition = partition;
        println!("collecting with {label} ({sizes})...");
        let col = perfbug_bench::collect_cached("fig13", &config);
        let eval = evaluate_two_stage(&col, 0, Stage2Params::default());
        table.row(vec![
            label.to_string(),
            sizes,
            format!("{:.2}", eval.metrics.tpr),
            format!("{:.2}", eval.metrics.fpr),
        ]);
    }
    println!("{}", table.render());
    println!("expected shape: reduced training designs detect fewer bugs / alarm more.");
}

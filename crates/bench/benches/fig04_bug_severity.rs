//! Figure 4 — distribution of the severity of the implemented bugs.
//!
//! Paper shape: all four buckets populated, roughly 20–30 % each.

use perfbug_bench::{banner, probe_cap};
use perfbug_core::bugs::{BugCatalog, Severity};
use perfbug_core::report::Table;
use perfbug_uarch::{presets, simulate};
use perfbug_workloads::{spec2006, WorkloadScale};

fn main() {
    banner(
        "Figure 4",
        "Distribution of bug severity (average IPC impact)",
    );
    let catalog = BugCatalog::core_full();
    let scale = WorkloadScale::default();
    let cap = probe_cap(20);

    // One probe trace per benchmark (round-robin) on the reference design.
    let mut traces: Vec<(f64, Vec<perfbug_workloads::Inst>)> = Vec::new();
    'outer: for ordinal in 0..32 {
        for spec in spec2006() {
            let probes = spec.probes(&scale);
            if ordinal < probes.len() {
                let program = spec.program(&scale);
                traces.push((probes[ordinal].weight, probes[ordinal].trace(&program)));
            }
            if let Some(max) = cap {
                if traces.len() >= max {
                    break 'outer;
                }
            }
        }
        if ordinal >= 2 && cap.is_none() {
            break; // paper scale: three rounds across the suite
        }
    }
    println!(
        "measuring {} variants on {} probes (Skylake reference)...",
        catalog.len(),
        traces.len()
    );

    let sky = presets::skylake();
    let base_ipcs: Vec<f64> = traces
        .iter()
        .map(|(_, t)| simulate(&sky, None, t, 1000).overall_ipc())
        .collect();

    let mut counts = [0usize; 4];
    let mut rows: Vec<(String, f64)> = Vec::new();
    for variant in catalog.variants() {
        let mut impact_sum = 0.0;
        let mut weight_sum = 0.0;
        for ((weight, trace), base) in traces.iter().zip(&base_ipcs) {
            let bug_ipc = simulate(&sky, Some(*variant), trace, 1000).overall_ipc();
            impact_sum += weight * ((base - bug_ipc) / base).max(0.0);
            weight_sum += weight;
        }
        let impact = impact_sum / weight_sum;
        let sev = Severity::grade(impact);
        let idx = Severity::all()
            .iter()
            .position(|s| *s == sev)
            .expect("bucket");
        counts[idx] += 1;
        rows.push((variant.describe(), impact));
    }

    let mut table = Table::new(vec!["severity", "% of implemented bugs"]);
    for (sev, count) in Severity::all().iter().zip(&counts) {
        table.row(vec![
            sev.label().to_string(),
            format!("{:.0}%", 100.0 * *count as f64 / catalog.len() as f64),
        ]);
    }
    println!("{}", table.render());

    println!("per-variant impacts:");
    for (name, impact) in rows {
        println!(
            "  {:55} {:6.2}%  [{}]",
            name,
            impact * 100.0,
            Severity::grade(impact).label()
        );
    }
    println!("\nexpected shape: all four buckets populated (paper: each 20-30%).");
}

//! Table VI — effect of the stage-1 feature window size.
//!
//! Paper shape: window 1 is best (TPR 0.84 / FPR 0); adding history steps
//! degrades sensitivity to bugs.

use perfbug_bench::{banner, gbt250};
use perfbug_core::experiment::evaluate_two_stage;
use perfbug_core::report::Table;
use perfbug_core::stage2::Stage2Params;

fn main() {
    banner("Table VI", "Window-size effect on detection (GBT-250)");
    let mut table = Table::new(vec!["window", "TPR", "FPR"]);
    for window in 1..=4usize {
        let mut config = perfbug_bench::base_config(vec![gbt250()], 12);
        config.window = window;
        println!("collecting with window = {window}...");
        let col = perfbug_bench::collect_cached("table06", &config);
        let eval = evaluate_two_stage(&col, 0, Stage2Params::default());
        table.row(vec![
            window.to_string(),
            format!("{:.2}", eval.metrics.tpr),
            format!("{:.2}", eval.metrics.fpr),
        ]);
    }
    println!("{}", table.render());
    println!("expected shape: window 1 best; larger windows do not help detection.");
}

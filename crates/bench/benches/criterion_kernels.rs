//! Criterion micro-benchmarks of the performance-critical kernels:
//! out-of-order simulation throughput, memory-hierarchy simulation,
//! stage-1 engine training, k-means clustering and counter selection.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use perfbug_core::counter_select::{select_counters, SelectionThresholds};
use perfbug_ml::{Dataset, Gbt, GbtParams, Mlp, MlpParams, Regressor};
use perfbug_uarch::{presets, simulate, BugSpec};
use perfbug_workloads::{benchmark, kmeans::kmeans, Inst, Opcode, WorkloadScale};

fn probe_trace() -> Vec<Inst> {
    let scale = WorkloadScale::tiny();
    let spec = benchmark("458.sjeng").expect("suite benchmark");
    let program = spec.program(&scale);
    spec.probes(&scale)[0].trace(&program)
}

fn bench_simulators(c: &mut Criterion) {
    let trace = probe_trace();
    let sky = presets::skylake();
    c.bench_function("uarch_sim_3k_insts_skylake", |b| {
        b.iter(|| simulate(&sky, None, &trace, 500))
    });
    c.bench_function("uarch_sim_3k_insts_with_bug", |b| {
        b.iter(|| {
            simulate(&sky, Some(BugSpec::SerializeOpcode { x: Opcode::Logic }), &trace, 500)
        })
    });
    let mem_cfg = perfbug_memsim::config::by_name("Skylake").expect("preset");
    c.bench_function("memsim_3k_insts_skylake", |b| {
        b.iter(|| perfbug_memsim::simulate_memory(&mem_cfg, None, &trace, 300))
    });
}

fn bench_engines(c: &mut Criterion) {
    // A stage-1-shaped dataset: 300 samples x 8 features.
    let rows: Vec<Vec<f64>> = (0..300)
        .map(|i| (0..8).map(|j| ((i * (j + 3)) as f64 * 0.013).sin()).collect())
        .collect();
    let y: Vec<f64> = rows.iter().map(|r| r.iter().sum::<f64>() * 0.2 + 0.5).collect();
    let data = Dataset::from_rows(&rows, &y).expect("aligned");
    c.bench_function("gbt250_train_300x8", |b| {
        b.iter_batched(
            || Gbt::new(GbtParams::default()),
            |mut m| m.fit(&data, None),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("mlp64_train_300x8_50epochs", |b| {
        b.iter_batched(
            || {
                Mlp::new(MlpParams {
                    hidden: vec![64],
                    max_epochs: 50,
                    patience: 50,
                    ..MlpParams::default()
                })
            },
            |mut m| m.fit(&data, None),
            BatchSize::SmallInput,
        )
    });
    let trained = {
        let mut m = Gbt::new(GbtParams::default());
        m.fit(&data, None);
        m
    };
    c.bench_function("gbt250_infer_300", |b| b.iter(|| trained.predict(data.x())));
}

fn bench_pipeline_pieces(c: &mut Criterion) {
    // k-means on SimPoint-shaped data: 78 intervals x 15 dims, k = 26.
    let points: Vec<Vec<f64>> = (0..78)
        .map(|i| (0..15).map(|j| (((i / 3) * 31 + j * 7) as f64 * 0.17).sin()).collect())
        .collect();
    c.bench_function("kmeans_78x15_k26", |b| b.iter(|| kmeans(&points, 26, 1, 200)));

    // Counter selection on a probe-shaped pool: 400 steps x 53 counters.
    let rows: Vec<Vec<f64>> = (0..400)
        .map(|i| (0..53).map(|j| ((i * (j + 2)) as f64 * 0.011).sin()).collect())
        .collect();
    let target: Vec<f64> = rows.iter().map(|r| r[3] * 0.7 + r[10] * 0.3).collect();
    let thresholds = SelectionThresholds::default();
    c.bench_function("counter_selection_400x53", |b| {
        b.iter(|| select_counters(&rows, &target, &thresholds, &[]))
    });
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_simulators, bench_engines, bench_pipeline_pieces
);
criterion_main!(kernels);

//! Criterion micro-benchmarks of the performance-critical kernels:
//! out-of-order simulation throughput, memory-hierarchy simulation,
//! stage-1 engine training, k-means clustering and counter selection.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use perfbug_core::counter_select::{select_counters, SelectionThresholds};
use perfbug_ml::{
    axpy, dot, gemv, matmul_transb, Dataset, Gbt, GbtParams, Matrix, Mlp, MlpParams, Regressor,
};
use perfbug_uarch::{presets, simulate, simulate_into, BugSpec, ProbeRun};
use perfbug_workloads::{benchmark, kmeans::kmeans, Inst, Opcode, WorkloadScale};

fn probe_trace() -> Vec<Inst> {
    let scale = WorkloadScale::tiny();
    let spec = benchmark("458.sjeng").expect("suite benchmark");
    let program = spec.program(&scale);
    spec.probes(&scale)[0].trace(&program)
}

fn bench_linalg(c: &mut Criterion) {
    // MLP-batch-shaped operands: a 32-row batch against a 256x64 layer.
    let a = Matrix::from_vec(
        32,
        64,
        (0..32 * 64)
            .map(|i| ((i * 37) % 101) as f64 / 50.0 - 1.0)
            .collect(),
    );
    let wt = Matrix::from_vec(
        256,
        64,
        (0..256 * 64)
            .map(|i| ((i * 53) % 97) as f64 / 48.0 - 1.0)
            .collect(),
    );
    let mut out = vec![0.0; 32 * 256];
    c.bench_function("matmul_transb_32x64_by_64x256", |b| {
        b.iter(|| {
            matmul_transb(a.as_slice(), wt.as_slice(), 32, 64, 256, &mut out);
            out[0]
        })
    });
    let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.11).sin()).collect();
    let mut y = vec![0.0; 256];
    c.bench_function("gemv_256x64", |b| {
        b.iter(|| {
            gemv(wt.as_slice(), 256, 64, &x, &mut y);
            y[0]
        })
    });
    let src: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.01).cos()).collect();
    let mut dst = vec![0.0; 4096];
    c.bench_function("axpy_4096", |b| {
        b.iter(|| {
            axpy(1.0001, &src, &mut dst);
            dst[0]
        })
    });
    // Audit partner of axpy_4096: both innermost kernels 4-lane unrolled
    // (numbers recorded in docs/ENGINES.md).
    c.bench_function("dot_4096", |b| b.iter(|| dot(&src, &dst)));
}

fn bench_simulators(c: &mut Criterion) {
    let trace = probe_trace();
    let sky = presets::skylake();
    c.bench_function("uarch_sim_3k_insts_skylake", |b| {
        b.iter(|| simulate(&sky, None, &trace, 500))
    });
    // The allocation-free path: one reused ProbeRun across iterations, so
    // each iteration measures pure pipeline + delta-snapshot sampling.
    let mut reused = ProbeRun::empty();
    c.bench_function("uarch_sim_3k_insts_reused_buffers", |b| {
        b.iter(|| {
            simulate_into(&sky, None, &trace, 500, &mut reused);
            reused.total_cycles
        })
    });
    // Per-step sampling cost in isolation: a step period so short that
    // the run is dominated by sample_row_into invocations.
    c.bench_function("uarch_sim_single_step_sampling", |b| {
        b.iter(|| {
            simulate_into(&sky, None, &trace, 16, &mut reused);
            reused.counter_rows.len()
        })
    });
    c.bench_function("uarch_sim_3k_insts_with_bug", |b| {
        b.iter(|| {
            simulate(
                &sky,
                Some(BugSpec::SerializeOpcode { x: Opcode::Logic }),
                &trace,
                500,
            )
        })
    });
    let mem_cfg = perfbug_memsim::config::by_name("Skylake").expect("preset");
    c.bench_function("memsim_3k_insts_skylake", |b| {
        b.iter(|| perfbug_memsim::simulate_memory(&mem_cfg, None, &trace, 300))
    });
}

fn bench_engines(c: &mut Criterion) {
    // A stage-1-shaped dataset: 300 samples x 8 features.
    let rows: Vec<Vec<f64>> = (0..300)
        .map(|i| {
            (0..8)
                .map(|j| ((i * (j + 3)) as f64 * 0.013).sin())
                .collect()
        })
        .collect();
    let y: Vec<f64> = rows
        .iter()
        .map(|r| r.iter().sum::<f64>() * 0.2 + 0.5)
        .collect();
    let data = Dataset::from_rows(&rows, &y).expect("aligned");
    c.bench_function("gbt250_train_300x8", |b| {
        b.iter_batched(
            || Gbt::new(GbtParams::default()),
            |mut m| m.fit(&data, None),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("mlp64_train_300x8_50epochs", |b| {
        b.iter_batched(
            || {
                Mlp::new(MlpParams {
                    hidden: vec![64],
                    max_epochs: 50,
                    patience: 50,
                    ..MlpParams::default()
                })
            },
            |mut m| m.fit(&data, None),
            BatchSize::SmallInput,
        )
    });
    let trained = {
        let mut m = Gbt::new(GbtParams::default());
        m.fit(&data, None);
        m
    };
    c.bench_function("gbt250_infer_300", |b| b.iter(|| trained.predict(data.x())));
}

fn bench_pipeline_pieces(c: &mut Criterion) {
    // k-means on SimPoint-shaped data: 78 intervals x 15 dims, k = 26.
    let points: Vec<Vec<f64>> = (0..78)
        .map(|i| {
            (0..15)
                .map(|j| (((i / 3) * 31 + j * 7) as f64 * 0.17).sin())
                .collect()
        })
        .collect();
    c.bench_function("kmeans_78x15_k26", |b| {
        b.iter(|| kmeans(&points, 26, 1, 200))
    });

    // Counter selection on a probe-shaped pool: 400 steps x 53 counters.
    let rows = perfbug_workloads::RowMatrix::from_rows(
        &(0..400)
            .map(|i| {
                (0..53)
                    .map(|j| ((i * (j + 2)) as f64 * 0.011).sin())
                    .collect()
            })
            .collect::<Vec<Vec<f64>>>(),
    );
    let target: Vec<f64> = rows.iter().map(|r| r[3] * 0.7 + r[10] * 0.3).collect();
    let thresholds = SelectionThresholds::default();
    c.bench_function("counter_selection_400x53", |b| {
        b.iter(|| select_counters(&rows, &target, &thresholds, &[]))
    });
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_linalg, bench_simulators, bench_engines, bench_pipeline_pieces
);
criterion_main!(kernels);

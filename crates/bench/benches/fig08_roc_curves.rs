//! Figure 8 — ROC curves of GBT-250 detection for four bug types.
//!
//! Paper shape: high-impact types (Serialized, IfOldestIssueOnlyX) reach
//! the top-left corner (detectable without false positives); subtler
//! types (IfXUsesRegNDelayT) trace lower curves.

use perfbug_bench::{banner, gbt250};
use perfbug_core::bugs::BugCatalog;
use perfbug_core::experiment::evaluate_two_stage;
use perfbug_core::stage2::Stage2Params;
use perfbug_core::DetectionMetrics;
use perfbug_uarch::BugSpec;
use perfbug_workloads::Opcode;

fn main() {
    banner("Figure 8", "ROC curves for GBT-250 on four bug types");
    // The four featured types plus distractor types so that each fold has
    // cross-type training positives.
    use BugSpec::*;
    use Opcode::*;
    let catalog = BugCatalog::new(vec![
        // Featured: Serialized.
        SerializeOpcode { x: Xor },
        SerializeOpcode { x: Sub },
        SerializeOpcode { x: FpMul },
        // Featured: IssueXOnlyIfOldest.
        IssueOnlyIfOldest { x: Popcnt },
        IssueOnlyIfOldest { x: Xor },
        IssueOnlyIfOldest { x: Load },
        // Featured: IfXUsesRegNDelayT.
        OpcodeUsesRegDelay {
            x: Add,
            r: 0,
            t: 10,
        },
        OpcodeUsesRegDelay {
            x: Load,
            r: 3,
            t: 8,
        },
        OpcodeUsesRegDelay {
            x: Xor,
            r: 1,
            t: 20,
        },
        // Featured: IfOldestIssueOnlyX.
        IfOldestIssueOnlyX { x: Xor },
        IfOldestIssueOnlyX { x: Add },
        IfOldestIssueOnlyX { x: FpAdd },
        // Distractors for training diversity.
        MispredictExtraDelay { t: 12 },
        L2ExtraLatency { t: 8 },
        RobBelowDelay { n: 16, t: 6 },
    ]);
    let mut config = perfbug_bench::base_config(vec![gbt250()], 20);
    config.catalog = catalog;
    println!("collecting ({} variants)...", config.catalog.len());
    let col = perfbug_bench::collect_cached("fig08", &config);
    let eval = evaluate_two_stage(&col, 0, Stage2Params::default());

    let featured = [
        "SerializeX",
        "IssueXOnlyIfOldest",
        "IfXUsesRegNDelayT",
        "IfOldestIssueOnlyX",
    ];
    for fold in &eval.folds {
        if !featured.contains(&fold.type_name.as_str()) {
            continue;
        }
        let curve = DetectionMetrics::roc(&fold.decisions);
        let m = DetectionMetrics::from_decisions(&fold.decisions);
        println!("\n--- {} (AUC {:.3}) ---", fold.type_name, m.roc_auc);
        println!("{:>8} {:>8}", "FPR", "TPR");
        for p in curve {
            println!("{:>8.3} {:>8.3}", p.fpr, p.tpr);
        }
    }
    println!("\nexpected shape: scheduler-serialisation types near the top-left corner;");
    println!("the register-delay type with visibly lower AUC.");
}

//! Figure 5 — ML-inferred vs simulated IPC time series on bug-free
//! designs (three representative SimPoints).
//!
//! Paper shape: all engines trace the simulated IPC closely; the LSTM is
//! the loosest fit but still correlated.

use perfbug_bench::{banner, gbt250, lstm, mlp, probe_cap};
use perfbug_core::bugs::BugCatalog;
use perfbug_core::experiment::{collect, CaptureSpec};
use perfbug_uarch::BugSpec;
use perfbug_workloads::benchmark;

fn main() {
    banner(
        "Figure 5",
        "IPC inference vs simulation on bug-free Skylake (3 SimPoints)",
    );
    let engines = vec![lstm(1, 500, 32), mlp(1, 2500, 160), gbt250()];
    let mut config = perfbug_bench::base_config(engines, 0);
    config.catalog = BugCatalog::new(vec![BugSpec::MispredictExtraDelay { t: 10 }]);
    config.benchmarks = vec![
        benchmark("403.gcc").expect("suite"),
        benchmark("401.bzip2").expect("suite"),
        benchmark("436.cactusADM").expect("suite"),
    ];
    // The paper shows gcc #12, bzip2 #16 and cactusADM #1; at quick scale
    // low-ordinal probes of the same benchmarks keep the run cheap (the
    // captured behaviour — engines tracing bug-free IPC — is ordinal
    // independent).
    config.max_probes = probe_cap(9);
    let targets = ["403.gcc#1", "401.bzip2#2", "436.cactusADM#3"];
    config.captures = targets
        .iter()
        .map(|id| CaptureSpec {
            probe_id: id.to_string(),
            arch: "Skylake".to_string(),
            bug: None,
        })
        .collect();

    println!("collecting (3 benchmarks, capture-only run)...");
    let col = collect(&config);

    for id in targets {
        let captured: Vec<_> = col.captures.iter().filter(|c| c.probe_id == id).collect();
        if captured.is_empty() {
            println!("\n(probe {id} not present at this scale)");
            continue;
        }
        println!(
            "\n--- {} on Skylake (bug-free), {} steps ---",
            id,
            captured[0].simulated.len()
        );
        print!("{:>6} {:>12}", "step", "Simulation");
        for c in &captured {
            print!(" {:>12}", c.engine);
        }
        println!();
        for t in 0..captured[0].simulated.len() {
            print!("{:>6} {:>12.4}", t, captured[0].simulated[t]);
            for c in &captured {
                print!(" {:>12.4}", c.inferred[t]);
            }
            println!();
        }
    }
    println!("\nexpected shape: inferred curves hug the simulated IPC on bug-free designs.");
}

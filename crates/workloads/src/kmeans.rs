//! K-means clustering with k-means++ seeding (Lloyd's algorithm).
//!
//! Used by the SimPoint extraction step to group basic-block vectors into
//! phases. Deterministic for a given seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SEED_SALT: u64 = 0x6b6d_6561_6e73; // "kmeans"

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct Kmeans {
    /// Cluster index per input point.
    pub assignments: Vec<usize>,
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances of points to their centroid.
    pub inertia: f64,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Runs k-means on `points`.
///
/// `k` is clamped to the number of points. Initialisation is k-means++;
/// iteration stops when assignments are stable or `max_iter` is reached.
/// Empty clusters are re-seeded with the point farthest from its current
/// centroid.
///
/// # Panics
///
/// Panics if `points` is empty, `k` is zero, points have inconsistent
/// dimensions, or any coordinate is non-finite. NaN coordinates would make
/// distance comparisons order-dependent (a NaN distance compares `Equal`
/// to everything under a total-order fallback), silently breaking the
/// cross-worker determinism guarantee — they are rejected up front.
pub fn kmeans(points: &[Vec<f64>], k: usize, seed: u64, max_iter: usize) -> Kmeans {
    assert!(!points.is_empty(), "cannot cluster zero points");
    assert!(k > 0, "k must be positive");
    let dim = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == dim),
        "inconsistent point dimensions"
    );
    assert!(
        points.iter().all(|p| p.iter().all(|v| v.is_finite())),
        "kmeans requires finite point coordinates"
    );
    let k = k.min(points.len());
    let mut rng = SmallRng::seed_from_u64(seed ^ SEED_SALT);

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| sq_dist(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 1e-18 {
            // All points coincide with a centroid; pick uniformly.
            rng.gen_range(0..points.len())
        } else {
            let mut pick = rng.gen::<f64>() * total;
            let mut chosen = points.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                if pick < d {
                    chosen = i;
                    break;
                }
                pick -= d;
            }
            chosen
        };
        centroids.push(points[next].clone());
        for (i, p) in points.iter().enumerate() {
            let d = sq_dist(p, centroids.last().expect("just pushed"));
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }

    let mut assignments = vec![0usize; points.len()];
    for _ in 0..max_iter {
        // Assignment step.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = sq_dist(p, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        // Update step: recompute means; re-seed empty clusters with the
        // point currently farthest from its assigned centroid.
        let mut counts = vec![0usize; centroids.len()];
        let mut sums = vec![vec![0.0; dim]; centroids.len()];
        for (i, p) in points.iter().enumerate() {
            counts[assignments[i]] += 1;
            for (s, v) in sums[assignments[i]].iter_mut().zip(p) {
                *s += v;
            }
        }
        let farthest = || -> usize {
            // Distances are never NaN (coordinates are asserted finite, and
            // squared distances only grow to +inf), so total_cmp is a true
            // order here rather than an arbitrary tie-break.
            points
                .iter()
                .enumerate()
                .map(|(i, p)| (i, sq_dist(p, &centroids[assignments[i]])))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(i, _)| i)
                .expect("points nonempty")
        };
        let mut new_centroids = Vec::with_capacity(centroids.len());
        for (c, sum) in sums.iter().enumerate() {
            if counts[c] == 0 {
                new_centroids.push(points[farthest()].clone());
            } else {
                new_centroids.push(sum.iter().map(|s| s / counts[c] as f64).collect());
            }
        }
        centroids = new_centroids;
    }

    let inertia = points
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| sq_dist(p, &centroids[a]))
        .sum();
    Kmeans {
        assignments,
        centroids,
        inertia,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(vec![0.0 + (i as f64) * 0.01, 0.0]);
            pts.push(vec![5.0 + (i as f64) * 0.01, 5.0]);
            pts.push(vec![-5.0, 5.0 + (i as f64) * 0.01]);
        }
        pts
    }

    #[test]
    fn separates_blobs() {
        let pts = blobs();
        let result = kmeans(&pts, 3, 1, 100);
        // Points of the same blob share a cluster.
        for chunk in 0..3 {
            let first = result.assignments[chunk];
            for i in 0..10 {
                assert_eq!(result.assignments[chunk + 3 * i], first);
            }
        }
        assert!(result.inertia < 1.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let pts = blobs();
        let a = kmeans(&pts, 3, 9, 100);
        let b = kmeans(&pts, 3, 9, 100);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn k_clamped_to_points() {
        let pts = vec![vec![0.0], vec![1.0]];
        let result = kmeans(&pts, 10, 0, 10);
        assert_eq!(result.centroids.len(), 2);
    }

    #[test]
    fn assignment_is_nearest_centroid() {
        let pts = blobs();
        let result = kmeans(&pts, 3, 4, 100);
        for (p, &a) in pts.iter().zip(&result.assignments) {
            let my_d = sq_dist(p, &result.centroids[a]);
            for c in &result.centroids {
                assert!(my_d <= sq_dist(p, c) + 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "finite point coordinates")]
    fn nan_coordinates_are_rejected() {
        let pts = vec![vec![0.0, 1.0], vec![f64::NAN, 2.0], vec![3.0, 4.0]];
        kmeans(&pts, 2, 0, 10);
    }

    #[test]
    #[should_panic(expected = "finite point coordinates")]
    fn infinite_coordinates_are_rejected() {
        // inf - inf inside sq_dist would manufacture a NaN distance even
        // though no input coordinate is NaN.
        let pts = vec![vec![f64::INFINITY], vec![1.0]];
        kmeans(&pts, 2, 0, 10);
    }

    #[test]
    fn identical_points_do_not_hang() {
        let pts = vec![vec![1.0, 1.0]; 8];
        let result = kmeans(&pts, 3, 2, 50);
        assert_eq!(result.assignments.len(), 8);
        assert!(result.inertia < 1e-12);
    }
}

//! # perfbug-workloads
//!
//! Synthetic workload generation and SimPoint extraction for the HPCA 2021
//! performance-bug-detection reproduction.
//!
//! The paper probes microarchitectures with short, performance-orthogonal
//! microbenchmarks extracted from SPEC CPU2006 via SimPoints (§III-B1).
//! This crate provides the whole substrate:
//!
//! * [`isa`] — the dynamic micro-op trace model ([`Inst`]) shared by the
//!   core and memory-system simulators,
//! * [`program`] — phase-structured synthetic programs with deterministic
//!   trace walkers,
//! * [`spec`] — ten benchmark profiles modelled on Table I of the paper
//!   (190 SimPoints in total),
//! * [`bbv`], [`kmeans`], [`simpoint`] — the SimPoint pipeline:
//!   basic-block-vector profiling, random projection, k-means clustering
//!   and representative-interval selection producing [`Probe`]s.
//!
//! ```
//! use perfbug_workloads::{benchmark, WorkloadScale};
//!
//! let scale = WorkloadScale::tiny();
//! let mcf = benchmark("426.mcf").expect("suite benchmark");
//! let probes = mcf.probes(&scale);
//! assert_eq!(probes.len(), 15); // Table I: 426.mcf has 15 SimPoints
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bbv;
pub mod isa;
pub mod kmeans;
pub mod program;
pub mod rowmat;
pub mod simpoint;
pub mod spec;
pub mod wire;

pub use isa::{FuClass, Inst, Opcode, Reg, ALL_OPCODES, FP_REG_BASE, NO_REG, NUM_ARCH_REGS};
pub use program::{MemStreamSpec, PhaseSpec, Program, Segment, Walker};
pub use rowmat::RowMatrix;
pub use simpoint::{extract_probes, extract_simpoints, Probe, SimPoint, SimPointConfig};
pub use spec::{benchmark, spec2006, BenchmarkSpec, WorkloadScale};

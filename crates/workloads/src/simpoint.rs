//! SimPoint extraction: clustering intervals into representative probes.
//!
//! The paper's key probe-design idea (§III-B1) is to use SimPoints not for
//! performance *estimation* but as an automatic source of short,
//! orthogonal, performance-relevant microbenchmarks. This module performs
//! the SimPoint pipeline — interval BBV profiling, random projection,
//! k-means — and emits one [`SimPoint`] per cluster: the interval nearest
//! the centroid plus its weight.

use crate::bbv::{profile, random_project};
use crate::isa::Inst;
use crate::kmeans::kmeans;
use crate::program::Program;

/// Dimension SimPoint 3.0 projects BBVs to before clustering.
pub const PROJECTED_DIM: usize = 15;

/// A selected representative interval of a program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimPoint {
    /// Index of the representative interval within the profiled window.
    pub interval: usize,
    /// Cluster this interval represents.
    pub cluster: usize,
    /// Fraction of all intervals belonging to this cluster.
    pub weight: f64,
}

/// Parameters of a SimPoint extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimPointConfig {
    /// Instructions per interval.
    pub interval_len: usize,
    /// Number of intervals profiled from the start of the trace.
    pub n_intervals: usize,
    /// Number of clusters (the paper fixes per-benchmark counts, Table I).
    pub k: usize,
    /// Clustering seed.
    pub seed: u64,
}

/// Extracts SimPoints from a program.
///
/// Returns one entry per non-empty cluster, sorted by interval index.
/// Weights sum to 1 over the returned set.
///
/// # Panics
///
/// Panics if any configuration field is zero.
pub fn extract_simpoints(program: &Program, config: &SimPointConfig) -> Vec<SimPoint> {
    assert!(config.k > 0, "k must be positive");
    let bbvs = profile(program, config.interval_len, config.n_intervals);
    let projected = random_project(&bbvs, PROJECTED_DIM, config.seed);
    let result = kmeans(&projected, config.k, config.seed, 200);

    let n_clusters = result.centroids.len();
    let mut best: Vec<Option<(usize, f64)>> = vec![None; n_clusters];
    let mut sizes = vec![0usize; n_clusters];
    for (i, (point, &cluster)) in projected.iter().zip(&result.assignments).enumerate() {
        sizes[cluster] += 1;
        let d: f64 = point
            .iter()
            .zip(&result.centroids[cluster])
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        if best[cluster].is_none_or(|(_, bd)| d < bd) {
            best[cluster] = Some((i, d));
        }
    }
    let total = result.assignments.len() as f64;
    let mut points: Vec<SimPoint> = best
        .iter()
        .enumerate()
        .filter_map(|(c, slot)| {
            slot.map(|(interval, _)| SimPoint {
                interval,
                cluster: c,
                weight: sizes[c] as f64 / total,
            })
        })
        .collect();
    points.sort_by_key(|s| s.interval);
    points
}

/// A performance probe: one benchmark SimPoint used as a microbenchmark.
///
/// The probe records *where* its trace lives; the trace itself is
/// regenerated deterministically on demand with [`Probe::trace`] so that
/// hundreds of probes do not need to be held in memory at once.
#[derive(Debug, Clone, PartialEq)]
pub struct Probe {
    /// Benchmark (program) name this probe was extracted from.
    pub benchmark: String,
    /// SimPoint ordinal within the benchmark (0-based; the paper's
    /// "SimPoint #12 of gcc" is `simpoint == 11` of `benchmark == "403.gcc"`).
    pub simpoint: usize,
    /// Interval index within the profiled window.
    pub interval: usize,
    /// Instructions per interval.
    pub interval_len: usize,
    /// SimPoint weight of this probe's cluster.
    pub weight: f64,
}

impl Probe {
    /// Human-readable probe identifier, e.g. `403.gcc#12`.
    pub fn id(&self) -> String {
        format!("{}#{}", self.benchmark, self.simpoint + 1)
    }

    /// Regenerates this probe's instruction trace from its program.
    ///
    /// # Panics
    ///
    /// Panics if `program` is not the benchmark this probe was extracted
    /// from (checked by name).
    pub fn trace(&self, program: &Program) -> Vec<Inst> {
        assert_eq!(
            program.name(),
            self.benchmark,
            "probe {} replayed on wrong program {}",
            self.id(),
            program.name()
        );
        let mut walker = program.walker();
        walker.skip(self.interval as u64 * self.interval_len as u64);
        walker.take_trace(self.interval_len)
    }
}

/// Builds probes for every SimPoint of a program.
pub fn extract_probes(program: &Program, config: &SimPointConfig) -> Vec<Probe> {
    extract_simpoints(program, config)
        .into_iter()
        .enumerate()
        .map(|(ordinal, sp)| Probe {
            benchmark: program.name().to_string(),
            simpoint: ordinal,
            interval: sp.interval,
            interval_len: config.interval_len,
            weight: sp.weight,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{PhaseSpec, Program, Segment};
    use crate::Opcode;

    fn three_phase_program() -> Program {
        let a = PhaseSpec {
            mix: vec![(Opcode::Add, 1.0)],
            ..PhaseSpec::default()
        };
        let b = PhaseSpec {
            mix: vec![(Opcode::FpMul, 1.0)],
            ..PhaseSpec::default()
        };
        let c = PhaseSpec {
            mix: vec![(Opcode::Xor, 1.0)],
            load_frac: 0.4,
            ..PhaseSpec::default()
        };
        Program::build(
            "three",
            &[a, b, c],
            vec![
                Segment {
                    phase: 0,
                    insts: 3000,
                },
                Segment {
                    phase: 1,
                    insts: 3000,
                },
                Segment {
                    phase: 2,
                    insts: 3000,
                },
                Segment {
                    phase: 0,
                    insts: 3000,
                },
            ],
            21,
        )
    }

    fn config() -> SimPointConfig {
        SimPointConfig {
            interval_len: 1000,
            n_intervals: 12,
            k: 3,
            seed: 5,
        }
    }

    #[test]
    fn weights_sum_to_one() {
        let p = three_phase_program();
        let sps = extract_simpoints(&p, &config());
        assert!(!sps.is_empty());
        let total: f64 = sps.iter().map(|s| s.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn simpoints_cover_distinct_phases() {
        let p = three_phase_program();
        let sps = extract_simpoints(&p, &config());
        assert_eq!(sps.len(), 3);
        // Representatives must come from different thirds of the schedule
        // (phases are 3 intervals each).
        let mut phase_of: Vec<usize> = sps.iter().map(|s| (s.interval / 3).min(3)).collect();
        phase_of.sort_unstable();
        phase_of.dedup();
        assert!(phase_of.len() >= 2, "representatives collapsed: {sps:?}");
    }

    #[test]
    fn probe_trace_matches_direct_walk() {
        let p = three_phase_program();
        let probes = extract_probes(&p, &config());
        let probe = &probes[1];
        let direct = {
            let mut w = p.walker();
            w.skip(probe.interval as u64 * 1000);
            w.take_trace(1000)
        };
        assert_eq!(probe.trace(&p), direct);
    }

    #[test]
    #[should_panic(expected = "wrong program")]
    fn probe_rejects_wrong_program() {
        let p = three_phase_program();
        let probes = extract_probes(&p, &config());
        let other = Program::build(
            "other",
            &[PhaseSpec::default()],
            vec![Segment {
                phase: 0,
                insts: 100,
            }],
            0,
        );
        probes[0].trace(&other);
    }

    #[test]
    fn extraction_is_deterministic() {
        let p = three_phase_program();
        let a = extract_probes(&p, &config());
        let b = extract_probes(&p, &config());
        assert_eq!(a, b);
    }

    #[test]
    fn probe_ids_are_one_based() {
        let p = three_phase_program();
        let probes = extract_probes(&p, &config());
        assert_eq!(probes[0].id(), "three#1");
    }
}

//! Fixed-width wire codec for [`Inst`] records.
//!
//! This is the payload codec of the on-disk PBTR trace format
//! (`perfbug-core`'s `tracecache`, `docs/FORMAT.md` §8): every dynamic
//! instruction is one fixed-length little-endian record, so a trace chunk
//! is random-accessible by index and its length is `count *`
//! [`INST_WIRE_LEN`] exactly. The codec is deliberately dumb — no
//! varints, no compression — because corruption detection lives one layer
//! up (per-chunk and whole-file FNV-1a checksums); here the only jobs are
//! byte-stability across builds and rejecting records that cannot have
//! been produced by the encoder.
//!
//! Wire codes for [`Opcode`] are the variant's position in
//! [`ALL_OPCODES`]. That table is append-only
//! and never renumbered (the same discipline as the PBCL bug codec), so
//! old trace files keep decoding after new opcodes are added.
//!
//! Decoding is panic-free: truncated or malformed records surface as
//! [`InstWireError`], never as a crash.

// pblint: allow-file(slice-index) -- decode keeps raw-byte indexing for the
// fixed-width record fields; every site is behind the single INST_WIRE_LEN
// length guard at the top of decode_inst, and the codec is exercised against
// truncation and corruption in this module's tests and core's trace_props.
use crate::isa::{Inst, Opcode, ALL_OPCODES};

/// Bytes of one encoded [`Inst`] record:
/// `pc u32 | mem_addr u32 | target u32 | opcode u8 | size u8 | src1 u8 |
/// src2 u8 | dst u8 | taken u8`.
pub const INST_WIRE_LEN: usize = 4 + 4 + 4 + 1 + 1 + 1 + 1 + 1 + 1;

/// Version of this record layout; folded into the PBTR fingerprint so a
/// layout change invalidates cached traces instead of misreading them.
pub const INST_WIRE_VERSION: u32 = 1;

/// A malformed [`Inst`] record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstWireError {
    /// Fewer than [`INST_WIRE_LEN`] bytes were available.
    Truncated {
        /// Bytes actually available.
        have: usize,
    },
    /// The opcode byte is not a valid wire code.
    BadOpcode(u8),
    /// The `taken` byte is neither 0 nor 1.
    BadTaken(u8),
}

impl std::fmt::Display for InstWireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstWireError::Truncated { have } => {
                write!(f, "truncated inst record: {have} of {INST_WIRE_LEN} bytes")
            }
            InstWireError::BadOpcode(code) => write!(f, "invalid opcode wire code {code}"),
            InstWireError::BadTaken(tag) => write!(f, "invalid taken tag {tag}"),
        }
    }
}

impl std::error::Error for InstWireError {}

/// The stable wire code of an opcode (its position in [`ALL_OPCODES`]).
pub fn opcode_wire_code(op: Opcode) -> u8 {
    let code = ALL_OPCODES
        .iter()
        .position(|&o| o == op)
        // pblint: allow(panic-policy) -- encode-side invariant: ALL_OPCODES is
        // the exhaustive opcode roster; a missing variant is a
        // compile-time-shaped bug, not a recoverable input condition.
        .expect("every opcode is in ALL_OPCODES");
    code as u8
}

/// The opcode for a wire code, or `None` if the code is out of range.
pub fn opcode_from_wire(code: u8) -> Option<Opcode> {
    ALL_OPCODES.get(usize::from(code)).copied()
}

/// Appends the [`INST_WIRE_LEN`]-byte record of `inst` to `out`.
pub fn encode_inst(inst: &Inst, out: &mut Vec<u8>) {
    out.extend_from_slice(&inst.pc.to_le_bytes());
    out.extend_from_slice(&inst.mem_addr.to_le_bytes());
    out.extend_from_slice(&inst.target.to_le_bytes());
    out.push(opcode_wire_code(inst.opcode));
    out.push(inst.size);
    out.push(inst.src1);
    out.push(inst.src2);
    out.push(inst.dst);
    out.push(u8::from(inst.taken));
}

/// Decodes one record from the front of `bytes` (which may be longer
/// than one record; exactly [`INST_WIRE_LEN`] bytes are consumed).
pub fn decode_inst(bytes: &[u8]) -> Result<Inst, InstWireError> {
    if bytes.len() < INST_WIRE_LEN {
        return Err(InstWireError::Truncated { have: bytes.len() });
    }
    let u32_at = |at: usize| -> u32 {
        let mut le = [0u8; 4];
        le.copy_from_slice(&bytes[at..at + 4]);
        u32::from_le_bytes(le)
    };
    let opcode = opcode_from_wire(bytes[12]).ok_or(InstWireError::BadOpcode(bytes[12]))?;
    let taken = match bytes[17] {
        0 => false,
        1 => true,
        tag => return Err(InstWireError::BadTaken(tag)),
    };
    Ok(Inst {
        pc: u32_at(0),
        mem_addr: u32_at(4),
        target: u32_at(8),
        opcode,
        size: bytes[13],
        src1: bytes[14],
        src2: bytes[15],
        dst: bytes[16],
        taken,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::NO_REG;

    fn sample() -> Inst {
        Inst {
            pc: 0x1234_5678,
            mem_addr: 0x9abc_def0,
            target: 0x0f0f_0f0f,
            opcode: Opcode::Branch,
            size: 5,
            src1: 3,
            src2: NO_REG,
            dst: 7,
            taken: true,
        }
    }

    #[test]
    fn record_round_trips() {
        let mut buf = Vec::new();
        encode_inst(&sample(), &mut buf);
        assert_eq!(buf.len(), INST_WIRE_LEN);
        assert_eq!(decode_inst(&buf).expect("decodes"), sample());
    }

    #[test]
    fn every_opcode_round_trips() {
        for op in ALL_OPCODES {
            assert_eq!(opcode_from_wire(opcode_wire_code(op)), Some(op));
        }
        assert_eq!(opcode_from_wire(ALL_OPCODES.len() as u8), None);
    }

    #[test]
    fn truncation_is_rejected() {
        let mut buf = Vec::new();
        encode_inst(&sample(), &mut buf);
        for cut in 0..INST_WIRE_LEN {
            assert_eq!(
                decode_inst(&buf[..cut]),
                Err(InstWireError::Truncated { have: cut })
            );
        }
    }

    #[test]
    fn bad_opcode_and_taken_tags_are_rejected() {
        let mut buf = Vec::new();
        encode_inst(&sample(), &mut buf);
        buf[12] = ALL_OPCODES.len() as u8;
        assert!(matches!(
            decode_inst(&buf),
            Err(InstWireError::BadOpcode(_))
        ));
        buf[12] = 0;
        buf[17] = 2;
        assert!(matches!(decode_inst(&buf), Err(InstWireError::BadTaken(2))));
    }
}

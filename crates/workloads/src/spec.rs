//! Synthetic stand-ins for the ten SPEC CPU2006 benchmarks of Table I.
//!
//! Each [`BenchmarkSpec`] lowers to a phase-structured [`Program`] whose
//! instruction mix, branch behaviour, memory footprint and phase count are
//! modelled on the corresponding SPEC application. The per-benchmark
//! SimPoint counts (`k`) match Table I of the paper exactly — 190 probes in
//! total across the suite.

use crate::program::{MemStreamSpec, PhaseSpec, Program, Segment};
use crate::simpoint::{extract_probes, Probe, SimPointConfig};
use crate::Opcode;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Global workload scale knob.
///
/// The paper's SimPoints hold ~10 M instructions each; at reproduction
/// scale an interval (= probe length) defaults to 20 k instructions. All
/// pipeline stages (BBV profiling, probe extraction, simulation) consume
/// this value so the scale can be raised uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadScale {
    /// Instructions per SimPoint interval (= per probe).
    pub interval_len: usize,
}

impl Default for WorkloadScale {
    fn default() -> Self {
        WorkloadScale {
            interval_len: 20_000,
        }
    }
}

impl WorkloadScale {
    /// A reduced scale for unit/integration tests.
    pub fn tiny() -> Self {
        WorkloadScale {
            interval_len: 3_000,
        }
    }
}

// Stream shorthand helpers.
fn small(stride: u32) -> MemStreamSpec {
    MemStreamSpec {
        stride,
        working_set: 1 << 14,
    } // 16 KiB: L1-resident
}
fn medium(stride: u32) -> MemStreamSpec {
    MemStreamSpec {
        stride,
        working_set: 1 << 18,
    } // 256 KiB: L2-resident
}
fn large(stride: u32) -> MemStreamSpec {
    MemStreamSpec {
        stride,
        working_set: 1 << 23,
    } // 8 MiB: L3/memory
}
fn chasing(working_set: u32) -> MemStreamSpec {
    MemStreamSpec {
        stride: 0,
        working_set,
    } // random: pointer chasing
}

/// One benchmark of the synthetic suite.
#[derive(Debug, Clone)]
pub struct BenchmarkSpec {
    /// SPEC-style benchmark name (e.g. `403.gcc`).
    pub name: &'static str,
    /// Number of SimPoints to extract (Table I of the paper).
    pub k: usize,
    /// Benchmark generation seed.
    pub seed: u64,
    phases: Vec<PhaseSpec>,
    /// Scheduling weight per phase (how often it recurs).
    phase_weights: Vec<f64>,
}

impl BenchmarkSpec {
    /// Number of intervals profiled for SimPoint extraction.
    pub fn n_intervals(&self) -> usize {
        (3 * self.k).max(48)
    }

    /// Lowers this benchmark into a concrete program at the given scale.
    pub fn program(&self, scale: &WorkloadScale) -> Program {
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0x5c4e_d01e);
        let total_weight: f64 = self.phase_weights.iter().sum();
        let budget = (self.n_intervals() as u64 + 8) * scale.interval_len as u64 * 5 / 4;
        let mut schedule = Vec::new();
        let mut emitted = 0u64;
        // Guarantee every phase appears at least once early so clustering
        // can see all behaviours, then draw by weight.
        for phase in 0..self.phases.len() {
            let insts = scale.interval_len as u64 * rng.gen_range(2..4);
            schedule.push(Segment { phase, insts });
            emitted += insts;
        }
        while emitted < budget {
            let mut pick = rng.gen::<f64>() * total_weight;
            let mut phase = 0;
            for (i, &w) in self.phase_weights.iter().enumerate() {
                if pick < w {
                    phase = i;
                    break;
                }
                pick -= w;
            }
            let insts = scale.interval_len as u64 * rng.gen_range(2..5);
            schedule.push(Segment { phase, insts });
            emitted += insts;
        }
        Program::build(self.name, &self.phases, schedule, self.seed)
    }

    /// SimPoint extraction parameters for this benchmark at `scale`.
    pub fn simpoint_config(&self, scale: &WorkloadScale) -> SimPointConfig {
        SimPointConfig {
            interval_len: scale.interval_len,
            n_intervals: self.n_intervals(),
            k: self.k,
            seed: self.seed,
        }
    }

    /// Convenience: builds the program and extracts its probes.
    pub fn probes(&self, scale: &WorkloadScale) -> Vec<Probe> {
        let program = self.program(scale);
        extract_probes(&program, &self.simpoint_config(scale))
    }
}

/// The ten-benchmark suite of Table I (190 SimPoints in total).
pub fn spec2006() -> Vec<BenchmarkSpec> {
    vec![
        perlbench(),
        bzip2(),
        gcc(),
        mcf(),
        milc(),
        cactus_adm(),
        namd(),
        soplex(),
        sjeng(),
        libquantum(),
    ]
}

/// Looks up one benchmark of the suite by name.
pub fn benchmark(name: &str) -> Option<BenchmarkSpec> {
    spec2006().into_iter().find(|b| b.name == name)
}

fn perlbench() -> BenchmarkSpec {
    // Interpreter: indirect dispatch, chaotic branches, small blocks.
    let dispatch = PhaseSpec {
        mix: vec![
            (Opcode::Add, 2.0),
            (Opcode::Logic, 2.0),
            (Opcode::Sub, 1.5),
            (Opcode::Shift, 1.0),
        ],
        load_frac: 0.24,
        store_frac: 0.10,
        chaotic_branch_frac: 0.5,
        indirect_frac: 0.25,
        n_blocks: 14,
        block_len: 7,
        streams: vec![small(8), medium(16)],
        dep_distance: 3,
    };
    let regex = PhaseSpec {
        mix: vec![
            (Opcode::Logic, 2.5),
            (Opcode::Shift, 2.0),
            (Opcode::Add, 1.0),
            (Opcode::Xor, 0.5),
        ],
        load_frac: 0.28,
        store_frac: 0.06,
        chaotic_branch_frac: 0.6,
        indirect_frac: 0.05,
        n_blocks: 10,
        block_len: 6,
        streams: vec![small(1), small(4)],
        dep_distance: 2,
    };
    let gc = PhaseSpec {
        mix: vec![(Opcode::Add, 2.0), (Opcode::Sub, 1.0), (Opcode::Logic, 1.0)],
        load_frac: 0.30,
        store_frac: 0.16,
        chaotic_branch_frac: 0.3,
        indirect_frac: 0.1,
        n_blocks: 8,
        block_len: 9,
        streams: vec![medium(24), chasing(1 << 20)],
        dep_distance: 4,
    };
    let string_ops = PhaseSpec {
        mix: vec![
            (Opcode::VecInt, 1.5),
            (Opcode::Add, 1.5),
            (Opcode::Logic, 1.0),
        ],
        load_frac: 0.3,
        store_frac: 0.2,
        chaotic_branch_frac: 0.15,
        indirect_frac: 0.0,
        n_blocks: 6,
        block_len: 12,
        streams: vec![medium(8), medium(8)],
        dep_distance: 6,
    };
    let numeric = PhaseSpec {
        mix: vec![(Opcode::Mul, 1.0), (Opcode::Add, 2.0), (Opcode::Div, 0.2)],
        load_frac: 0.18,
        store_frac: 0.08,
        chaotic_branch_frac: 0.2,
        indirect_frac: 0.02,
        n_blocks: 7,
        block_len: 10,
        streams: vec![small(8)],
        dep_distance: 3,
    };
    BenchmarkSpec {
        name: "400.perlbench",
        k: 14,
        seed: 400,
        phases: vec![dispatch, regex, gc, string_ops, numeric],
        phase_weights: vec![3.0, 2.0, 1.0, 1.5, 1.0],
    }
}

fn bzip2() -> BenchmarkSpec {
    // Compression: shift/logic loops, sorting with data-dependent branches.
    let huffman = PhaseSpec {
        mix: vec![
            (Opcode::Shift, 3.0),
            (Opcode::Logic, 2.0),
            (Opcode::Add, 1.5),
        ],
        load_frac: 0.2,
        store_frac: 0.12,
        chaotic_branch_frac: 0.35,
        indirect_frac: 0.0,
        n_blocks: 9,
        block_len: 8,
        streams: vec![small(1), medium(4)],
        dep_distance: 2,
    };
    let sorting = PhaseSpec {
        mix: vec![(Opcode::Sub, 2.5), (Opcode::Add, 1.5), (Opcode::Logic, 1.0)],
        load_frac: 0.32,
        store_frac: 0.14,
        chaotic_branch_frac: 0.55,
        indirect_frac: 0.0,
        n_blocks: 11,
        block_len: 7,
        streams: vec![medium(4), chasing(1 << 19)],
        dep_distance: 3,
    };
    let mtf = PhaseSpec {
        mix: vec![(Opcode::Add, 2.0), (Opcode::Logic, 1.5), (Opcode::Xor, 0.8)],
        load_frac: 0.35,
        store_frac: 0.2,
        chaotic_branch_frac: 0.25,
        indirect_frac: 0.0,
        n_blocks: 6,
        block_len: 10,
        streams: vec![small(1), small(2)],
        dep_distance: 2,
    };
    let rle = PhaseSpec {
        mix: vec![(Opcode::Add, 2.0), (Opcode::Sub, 1.0), (Opcode::Shift, 1.0)],
        load_frac: 0.3,
        store_frac: 0.22,
        chaotic_branch_frac: 0.1,
        indirect_frac: 0.0,
        n_blocks: 5,
        block_len: 14,
        streams: vec![large(8)],
        dep_distance: 5,
    };
    let crc = PhaseSpec {
        mix: vec![
            (Opcode::Xor, 2.5),
            (Opcode::Shift, 2.0),
            (Opcode::Logic, 1.0),
        ],
        load_frac: 0.22,
        store_frac: 0.05,
        chaotic_branch_frac: 0.05,
        indirect_frac: 0.0,
        n_blocks: 4,
        block_len: 12,
        streams: vec![large(4)],
        dep_distance: 1,
    };
    let bitstream = PhaseSpec {
        mix: vec![
            (Opcode::Shift, 2.5),
            (Opcode::Logic, 2.0),
            (Opcode::Add, 1.0),
        ],
        load_frac: 0.15,
        store_frac: 0.25,
        chaotic_branch_frac: 0.2,
        indirect_frac: 0.0,
        n_blocks: 7,
        block_len: 9,
        streams: vec![medium(1)],
        dep_distance: 2,
    };
    BenchmarkSpec {
        name: "401.bzip2",
        k: 23,
        seed: 401,
        phases: vec![huffman, sorting, mtf, rle, crc, bitstream],
        phase_weights: vec![2.0, 3.0, 1.5, 1.0, 0.7, 1.5],
    }
}

fn gcc() -> BenchmarkSpec {
    // Compiler: branchy, big footprint, plus a rare XOR-rich phase that
    // reproduces the paper's SimPoint-#12 visibility anecdote (Fig. 3).
    let parse = PhaseSpec {
        mix: vec![(Opcode::Add, 2.0), (Opcode::Sub, 1.5), (Opcode::Logic, 1.5)],
        load_frac: 0.26,
        store_frac: 0.1,
        chaotic_branch_frac: 0.5,
        indirect_frac: 0.12,
        n_blocks: 16,
        block_len: 6,
        streams: vec![medium(16), chasing(1 << 21)],
        dep_distance: 3,
    };
    let dataflow = PhaseSpec {
        mix: vec![
            (Opcode::Logic, 2.5),
            (Opcode::Add, 1.5),
            (Opcode::Shift, 1.0),
        ],
        load_frac: 0.3,
        store_frac: 0.12,
        chaotic_branch_frac: 0.35,
        indirect_frac: 0.02,
        n_blocks: 12,
        block_len: 8,
        streams: vec![medium(8), medium(32)],
        dep_distance: 4,
    };
    let regalloc = PhaseSpec {
        mix: vec![(Opcode::Add, 2.0), (Opcode::Sub, 2.0), (Opcode::Logic, 1.0)],
        load_frac: 0.28,
        store_frac: 0.15,
        chaotic_branch_frac: 0.45,
        indirect_frac: 0.05,
        n_blocks: 10,
        block_len: 7,
        streams: vec![chasing(1 << 19), small(8)],
        dep_distance: 3,
    };
    // The rare phase: bitmap-heavy liveness analysis — >2x the XOR density.
    let bitmaps = PhaseSpec {
        mix: vec![
            (Opcode::Xor, 3.0),
            (Opcode::Logic, 2.0),
            (Opcode::Shift, 1.0),
        ],
        load_frac: 0.25,
        store_frac: 0.12,
        chaotic_branch_frac: 0.1,
        indirect_frac: 0.0,
        n_blocks: 5,
        block_len: 11,
        streams: vec![medium(8)],
        dep_distance: 2,
    };
    let emit = PhaseSpec {
        mix: vec![
            (Opcode::Add, 2.0),
            (Opcode::Shift, 1.0),
            (Opcode::Logic, 1.0),
        ],
        load_frac: 0.2,
        store_frac: 0.25,
        chaotic_branch_frac: 0.25,
        indirect_frac: 0.08,
        n_blocks: 9,
        block_len: 8,
        streams: vec![large(16)],
        dep_distance: 4,
    };
    let macroexp = PhaseSpec {
        mix: vec![(Opcode::Add, 1.5), (Opcode::Logic, 1.5), (Opcode::Sub, 1.0)],
        load_frac: 0.33,
        store_frac: 0.18,
        chaotic_branch_frac: 0.4,
        indirect_frac: 0.15,
        n_blocks: 13,
        block_len: 6,
        streams: vec![chasing(1 << 20), small(4)],
        dep_distance: 2,
    };
    BenchmarkSpec {
        name: "403.gcc",
        k: 18,
        seed: 403,
        phases: vec![parse, dataflow, regalloc, bitmaps, emit, macroexp],
        phase_weights: vec![3.0, 2.0, 2.0, 0.5, 1.5, 1.5],
    }
}

fn mcf() -> BenchmarkSpec {
    // Network simplex: pointer chasing over a huge working set, low IPC.
    let arcs = PhaseSpec {
        mix: vec![(Opcode::Add, 2.0), (Opcode::Sub, 1.5), (Opcode::Mul, 0.3)],
        load_frac: 0.42,
        store_frac: 0.08,
        chaotic_branch_frac: 0.5,
        indirect_frac: 0.0,
        n_blocks: 8,
        block_len: 7,
        streams: vec![chasing(1 << 25), chasing(1 << 23)],
        dep_distance: 1,
    };
    let pricing = PhaseSpec {
        mix: vec![(Opcode::Sub, 2.0), (Opcode::Add, 1.5), (Opcode::Logic, 0.5)],
        load_frac: 0.45,
        store_frac: 0.05,
        chaotic_branch_frac: 0.6,
        indirect_frac: 0.0,
        n_blocks: 6,
        block_len: 8,
        streams: vec![chasing(1 << 25)],
        dep_distance: 1,
    };
    let flow_update = PhaseSpec {
        mix: vec![(Opcode::Add, 2.0), (Opcode::Sub, 1.0)],
        load_frac: 0.35,
        store_frac: 0.2,
        chaotic_branch_frac: 0.3,
        indirect_frac: 0.0,
        n_blocks: 5,
        block_len: 9,
        streams: vec![chasing(1 << 24), medium(8)],
        dep_distance: 2,
    };
    let tree = PhaseSpec {
        mix: vec![(Opcode::Add, 1.5), (Opcode::Logic, 1.0), (Opcode::Sub, 1.0)],
        load_frac: 0.4,
        store_frac: 0.12,
        chaotic_branch_frac: 0.45,
        indirect_frac: 0.0,
        n_blocks: 7,
        block_len: 6,
        streams: vec![chasing(1 << 22)],
        dep_distance: 1,
    };
    BenchmarkSpec {
        name: "426.mcf",
        k: 15,
        seed: 426,
        phases: vec![arcs, pricing, flow_update, tree],
        phase_weights: vec![3.0, 2.0, 1.5, 1.5],
    }
}

fn milc() -> BenchmarkSpec {
    // Lattice QCD: FP mul/add over streaming large arrays.
    let su3_mult = PhaseSpec {
        mix: vec![
            (Opcode::FpMul, 3.0),
            (Opcode::FpAdd, 2.5),
            (Opcode::VecFp, 1.0),
        ],
        load_frac: 0.3,
        store_frac: 0.12,
        chaotic_branch_frac: 0.02,
        indirect_frac: 0.0,
        n_blocks: 5,
        block_len: 16,
        streams: vec![large(16), large(16), large(32)],
        dep_distance: 6,
    };
    let gauge = PhaseSpec {
        mix: vec![
            (Opcode::FpAdd, 2.5),
            (Opcode::FpMul, 2.0),
            (Opcode::Add, 0.5),
        ],
        load_frac: 0.33,
        store_frac: 0.15,
        chaotic_branch_frac: 0.05,
        indirect_frac: 0.0,
        n_blocks: 6,
        block_len: 14,
        streams: vec![large(8), large(8)],
        dep_distance: 4,
    };
    let cg_solver = PhaseSpec {
        mix: vec![
            (Opcode::FpMul, 2.0),
            (Opcode::FpAdd, 2.0),
            (Opcode::FpDiv, 0.15),
        ],
        load_frac: 0.35,
        store_frac: 0.1,
        chaotic_branch_frac: 0.08,
        indirect_frac: 0.0,
        n_blocks: 7,
        block_len: 12,
        streams: vec![large(8), medium(8)],
        dep_distance: 3,
    };
    let scatter = PhaseSpec {
        mix: vec![
            (Opcode::FpAdd, 1.5),
            (Opcode::Add, 1.5),
            (Opcode::FpMul, 1.0),
        ],
        load_frac: 0.3,
        store_frac: 0.25,
        chaotic_branch_frac: 0.1,
        indirect_frac: 0.0,
        n_blocks: 5,
        block_len: 10,
        streams: vec![chasing(1 << 23), large(16)],
        dep_distance: 3,
    };
    let int_setup = PhaseSpec {
        mix: vec![(Opcode::Add, 2.0), (Opcode::Mul, 1.0), (Opcode::Shift, 0.8)],
        load_frac: 0.25,
        store_frac: 0.15,
        chaotic_branch_frac: 0.15,
        indirect_frac: 0.0,
        n_blocks: 6,
        block_len: 9,
        streams: vec![medium(8)],
        dep_distance: 3,
    };
    BenchmarkSpec {
        name: "433.milc",
        k: 20,
        seed: 433,
        phases: vec![su3_mult, gauge, cg_solver, scatter, int_setup],
        phase_weights: vec![3.0, 2.0, 2.5, 1.0, 0.8],
    }
}

fn cactus_adm() -> BenchmarkSpec {
    // Numerical relativity: long FP dependency chains, stencil walks.
    let stencil = PhaseSpec {
        mix: vec![
            (Opcode::FpMul, 2.5),
            (Opcode::FpAdd, 2.5),
            (Opcode::FpDiv, 0.1),
        ],
        load_frac: 0.34,
        store_frac: 0.1,
        chaotic_branch_frac: 0.02,
        indirect_frac: 0.0,
        n_blocks: 4,
        block_len: 24,
        streams: vec![large(8), large(8), large(8)],
        dep_distance: 1,
    };
    let rhs = PhaseSpec {
        mix: vec![
            (Opcode::FpAdd, 2.0),
            (Opcode::FpMul, 2.0),
            (Opcode::VecFp, 0.8),
        ],
        load_frac: 0.3,
        store_frac: 0.14,
        chaotic_branch_frac: 0.03,
        indirect_frac: 0.0,
        n_blocks: 5,
        block_len: 20,
        streams: vec![large(16), medium(8)],
        dep_distance: 2,
    };
    let boundary = PhaseSpec {
        mix: vec![(Opcode::FpAdd, 1.5), (Opcode::Add, 1.5), (Opcode::Sub, 1.0)],
        load_frac: 0.28,
        store_frac: 0.2,
        chaotic_branch_frac: 0.25,
        indirect_frac: 0.0,
        n_blocks: 7,
        block_len: 8,
        streams: vec![medium(8), small(8)],
        dep_distance: 3,
    };
    let reduction = PhaseSpec {
        mix: vec![(Opcode::FpAdd, 3.0), (Opcode::FpMul, 0.5)],
        load_frac: 0.4,
        store_frac: 0.02,
        chaotic_branch_frac: 0.02,
        indirect_frac: 0.0,
        n_blocks: 3,
        block_len: 12,
        streams: vec![large(8)],
        dep_distance: 1,
    };
    BenchmarkSpec {
        name: "436.cactusADM",
        k: 16,
        seed: 436,
        phases: vec![stencil, rhs, boundary, reduction],
        phase_weights: vec![3.5, 2.0, 1.0, 1.0],
    }
}

fn namd() -> BenchmarkSpec {
    // Molecular dynamics: high-ILP FP with good locality.
    let pairlist = PhaseSpec {
        mix: vec![
            (Opcode::FpMul, 2.0),
            (Opcode::FpAdd, 2.0),
            (Opcode::Sub, 1.0),
        ],
        load_frac: 0.3,
        store_frac: 0.08,
        chaotic_branch_frac: 0.35,
        indirect_frac: 0.0,
        n_blocks: 8,
        block_len: 10,
        streams: vec![medium(16), medium(32)],
        dep_distance: 6,
    };
    let force_short = PhaseSpec {
        mix: vec![
            (Opcode::FpMul, 3.0),
            (Opcode::FpAdd, 2.5),
            (Opcode::FpDiv, 0.2),
        ],
        load_frac: 0.28,
        store_frac: 0.1,
        chaotic_branch_frac: 0.1,
        indirect_frac: 0.0,
        n_blocks: 5,
        block_len: 18,
        streams: vec![medium(8), small(8)],
        dep_distance: 8,
    };
    let force_long = PhaseSpec {
        mix: vec![
            (Opcode::VecFp, 2.0),
            (Opcode::FpMul, 2.0),
            (Opcode::FpAdd, 2.0),
        ],
        load_frac: 0.26,
        store_frac: 0.1,
        chaotic_branch_frac: 0.05,
        indirect_frac: 0.0,
        n_blocks: 5,
        block_len: 16,
        streams: vec![large(16), medium(8)],
        dep_distance: 7,
    };
    let integrate = PhaseSpec {
        mix: vec![(Opcode::FpAdd, 2.5), (Opcode::FpMul, 1.5)],
        load_frac: 0.3,
        store_frac: 0.2,
        chaotic_branch_frac: 0.03,
        indirect_frac: 0.0,
        n_blocks: 4,
        block_len: 12,
        streams: vec![medium(8)],
        dep_distance: 5,
    };
    let exclusion = PhaseSpec {
        mix: vec![
            (Opcode::Logic, 2.0),
            (Opcode::Add, 1.5),
            (Opcode::FpAdd, 1.0),
        ],
        load_frac: 0.32,
        store_frac: 0.06,
        chaotic_branch_frac: 0.4,
        indirect_frac: 0.0,
        n_blocks: 7,
        block_len: 7,
        streams: vec![small(4), medium(16)],
        dep_distance: 3,
    };
    let cell_update = PhaseSpec {
        mix: vec![(Opcode::FpAdd, 1.5), (Opcode::Add, 1.5), (Opcode::Mul, 0.5)],
        load_frac: 0.28,
        store_frac: 0.18,
        chaotic_branch_frac: 0.15,
        indirect_frac: 0.0,
        n_blocks: 6,
        block_len: 9,
        streams: vec![medium(24)],
        dep_distance: 4,
    };
    BenchmarkSpec {
        name: "444.namd",
        k: 26,
        seed: 444,
        phases: vec![
            pairlist,
            force_short,
            force_long,
            integrate,
            exclusion,
            cell_update,
        ],
        phase_weights: vec![1.5, 3.0, 2.5, 1.0, 1.0, 1.0],
    }
}

fn soplex() -> BenchmarkSpec {
    // Simplex LP solver: FP with divides, sparse-matrix gathers.
    let factor = PhaseSpec {
        mix: vec![
            (Opcode::FpMul, 2.5),
            (Opcode::FpAdd, 2.0),
            (Opcode::FpDiv, 0.5),
        ],
        load_frac: 0.32,
        store_frac: 0.12,
        chaotic_branch_frac: 0.15,
        indirect_frac: 0.0,
        n_blocks: 6,
        block_len: 12,
        streams: vec![chasing(1 << 22), medium(8)],
        dep_distance: 2,
    };
    let pricing = PhaseSpec {
        mix: vec![
            (Opcode::FpAdd, 2.0),
            (Opcode::Sub, 1.5),
            (Opcode::FpMul, 1.5),
        ],
        load_frac: 0.38,
        store_frac: 0.05,
        chaotic_branch_frac: 0.45,
        indirect_frac: 0.0,
        n_blocks: 8,
        block_len: 8,
        streams: vec![large(8), chasing(1 << 21)],
        dep_distance: 2,
    };
    let ratio_test = PhaseSpec {
        mix: vec![
            (Opcode::FpDiv, 1.0),
            (Opcode::FpAdd, 2.0),
            (Opcode::Sub, 1.5),
        ],
        load_frac: 0.3,
        store_frac: 0.06,
        chaotic_branch_frac: 0.5,
        indirect_frac: 0.0,
        n_blocks: 7,
        block_len: 7,
        streams: vec![medium(8)],
        dep_distance: 2,
    };
    let update = PhaseSpec {
        mix: vec![
            (Opcode::FpMul, 2.0),
            (Opcode::FpAdd, 2.0),
            (Opcode::Add, 1.0),
        ],
        load_frac: 0.3,
        store_frac: 0.2,
        chaotic_branch_frac: 0.1,
        indirect_frac: 0.0,
        n_blocks: 5,
        block_len: 11,
        streams: vec![large(8), medium(16)],
        dep_distance: 4,
    };
    let setup = PhaseSpec {
        mix: vec![(Opcode::Add, 2.0), (Opcode::Logic, 1.0), (Opcode::Mul, 0.6)],
        load_frac: 0.3,
        store_frac: 0.18,
        chaotic_branch_frac: 0.3,
        indirect_frac: 0.03,
        n_blocks: 9,
        block_len: 7,
        streams: vec![medium(16), small(8)],
        dep_distance: 3,
    };
    BenchmarkSpec {
        name: "450.soplex",
        k: 21,
        seed: 450,
        phases: vec![factor, pricing, ratio_test, update, setup],
        phase_weights: vec![2.5, 2.5, 1.5, 2.0, 1.0],
    }
}

fn sjeng() -> BenchmarkSpec {
    // Chess search: chaotic branches, bit-board logic, popcount.
    let search = PhaseSpec {
        mix: vec![(Opcode::Logic, 2.0), (Opcode::Add, 1.5), (Opcode::Sub, 1.5)],
        load_frac: 0.26,
        store_frac: 0.1,
        chaotic_branch_frac: 0.65,
        indirect_frac: 0.05,
        n_blocks: 14,
        block_len: 6,
        streams: vec![small(8), medium(16)],
        dep_distance: 3,
    };
    let eval = PhaseSpec {
        mix: vec![
            (Opcode::Popcnt, 1.5),
            (Opcode::Logic, 2.5),
            (Opcode::Shift, 2.0),
        ],
        load_frac: 0.22,
        store_frac: 0.04,
        chaotic_branch_frac: 0.35,
        indirect_frac: 0.0,
        n_blocks: 8,
        block_len: 9,
        streams: vec![small(8)],
        dep_distance: 2,
    };
    let movegen = PhaseSpec {
        mix: vec![
            (Opcode::Shift, 2.5),
            (Opcode::Logic, 2.0),
            (Opcode::Xor, 1.0),
        ],
        load_frac: 0.2,
        store_frac: 0.15,
        chaotic_branch_frac: 0.4,
        indirect_frac: 0.0,
        n_blocks: 9,
        block_len: 8,
        streams: vec![small(4), small(16)],
        dep_distance: 2,
    };
    let hash_probe = PhaseSpec {
        mix: vec![(Opcode::Xor, 1.5), (Opcode::Logic, 1.5), (Opcode::Add, 1.0)],
        load_frac: 0.4,
        store_frac: 0.1,
        chaotic_branch_frac: 0.55,
        indirect_frac: 0.0,
        n_blocks: 6,
        block_len: 7,
        streams: vec![chasing(1 << 23)],
        dep_distance: 2,
    };
    let quiesce = PhaseSpec {
        mix: vec![(Opcode::Sub, 2.0), (Opcode::Logic, 1.5), (Opcode::Add, 1.5)],
        load_frac: 0.24,
        store_frac: 0.08,
        chaotic_branch_frac: 0.6,
        indirect_frac: 0.03,
        n_blocks: 10,
        block_len: 6,
        streams: vec![small(8), medium(8)],
        dep_distance: 3,
    };
    BenchmarkSpec {
        name: "458.sjeng",
        k: 19,
        seed: 458,
        phases: vec![search, eval, movegen, hash_probe, quiesce],
        phase_weights: vec![3.0, 2.0, 2.0, 1.0, 1.5],
    }
}

fn libquantum() -> BenchmarkSpec {
    // Quantum simulation: XOR-heavy streaming over a huge amplitude array.
    let toffoli = PhaseSpec {
        mix: vec![(Opcode::Xor, 3.0), (Opcode::Logic, 2.0), (Opcode::Add, 1.0)],
        load_frac: 0.35,
        store_frac: 0.15,
        chaotic_branch_frac: 0.05,
        indirect_frac: 0.0,
        n_blocks: 4,
        block_len: 10,
        streams: vec![large(16), large(16)],
        dep_distance: 2,
    };
    let cnot = PhaseSpec {
        mix: vec![
            (Opcode::Xor, 2.5),
            (Opcode::Logic, 1.5),
            (Opcode::Shift, 1.0),
        ],
        load_frac: 0.38,
        store_frac: 0.18,
        chaotic_branch_frac: 0.03,
        indirect_frac: 0.0,
        n_blocks: 3,
        block_len: 9,
        streams: vec![large(16)],
        dep_distance: 1,
    };
    let sigma = PhaseSpec {
        mix: vec![(Opcode::Logic, 2.0), (Opcode::Add, 1.5), (Opcode::Xor, 1.0)],
        load_frac: 0.35,
        store_frac: 0.12,
        chaotic_branch_frac: 0.1,
        indirect_frac: 0.0,
        n_blocks: 5,
        block_len: 8,
        streams: vec![large(32), medium(8)],
        dep_distance: 2,
    };
    let measure = PhaseSpec {
        mix: vec![
            (Opcode::FpAdd, 1.5),
            (Opcode::FpMul, 1.5),
            (Opcode::Add, 1.0),
        ],
        load_frac: 0.4,
        store_frac: 0.04,
        chaotic_branch_frac: 0.2,
        indirect_frac: 0.0,
        n_blocks: 4,
        block_len: 9,
        streams: vec![large(8)],
        dep_distance: 3,
    };
    BenchmarkSpec {
        name: "462.libquantum",
        k: 18,
        seed: 462,
        phases: vec![toffoli, cnot, sigma, measure],
        phase_weights: vec![3.0, 2.5, 1.5, 1.0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_simpoint_counts() {
        let suite = spec2006();
        assert_eq!(suite.len(), 10);
        let total: usize = suite.iter().map(|b| b.k).sum();
        assert_eq!(total, 190, "Table I lists 190 SimPoints in total");
        let gcc = benchmark("403.gcc").unwrap();
        assert_eq!(gcc.k, 18);
        let namd = benchmark("444.namd").unwrap();
        assert_eq!(namd.k, 26);
    }

    #[test]
    fn unknown_benchmark_is_none() {
        assert!(benchmark("999.nothing").is_none());
    }

    #[test]
    fn programs_build_at_tiny_scale() {
        let scale = WorkloadScale::tiny();
        for spec in spec2006() {
            let program = spec.program(&scale);
            assert_eq!(program.name(), spec.name);
            assert!(program.n_blocks() > 0);
            // Schedule must cover the profiled window.
            let needed = (spec.n_intervals() * scale.interval_len) as u64;
            assert!(program.schedule_len() >= needed);
        }
    }

    #[test]
    fn probe_extraction_yields_k_probes() {
        // Use the two cheapest benchmarks to keep test time low.
        let scale = WorkloadScale::tiny();
        let spec = benchmark("426.mcf").unwrap();
        let probes = spec.probes(&scale);
        assert_eq!(probes.len(), spec.k);
        let weights: f64 = probes.iter().map(|p| p.weight).sum();
        assert!((weights - 1.0).abs() < 1e-9);
        // All intervals distinct.
        let mut intervals: Vec<usize> = probes.iter().map(|p| p.interval).collect();
        intervals.sort_unstable();
        intervals.dedup();
        assert_eq!(intervals.len(), probes.len());
    }

    #[test]
    fn gcc_has_a_xor_rich_simpoint() {
        // The Fig. 3 anecdote: one gcc SimPoint is much denser in XOR than
        // the benchmark average.
        let scale = WorkloadScale::tiny();
        let spec = benchmark("403.gcc").unwrap();
        let program = spec.program(&scale);
        let probes = extract_probes(&program, &spec.simpoint_config(&scale));
        let xor_density = |p: &Probe| {
            let trace = p.trace(&program);
            trace.iter().filter(|i| i.opcode == Opcode::Xor).count() as f64 / trace.len() as f64
        };
        let densities: Vec<f64> = probes.iter().map(xor_density).collect();
        let mean = densities.iter().sum::<f64>() / densities.len() as f64;
        let max = densities.iter().cloned().fold(0.0, f64::max);
        assert!(max > 2.0 * mean, "max {max:.4} mean {mean:.4}");
    }
}

//! A dense row-major matrix of `f64` feature rows backed by one flat
//! buffer.
//!
//! Counter time series used to be `Vec<Vec<f64>>` — one heap allocation
//! per sampled step. [`RowMatrix`] stores all rows contiguously with a
//! fixed stride, so an entire run's sampling costs a single (amortised)
//! allocation, rows are cache-adjacent for the feature-assembly and
//! counter-selection loops downstream, and a cleared matrix retains its
//! capacity for reuse across simulations.

/// Dense row-major `f64` matrix with a fixed row width.
#[derive(Clone, PartialEq, Default)]
pub struct RowMatrix {
    width: usize,
    data: Vec<f64>,
}

impl RowMatrix {
    /// An empty matrix whose rows will have `width` columns.
    pub fn new(width: usize) -> Self {
        RowMatrix {
            width,
            data: Vec::new(),
        }
    }

    /// An empty matrix with capacity reserved for `rows` rows.
    pub fn with_capacity(width: usize, rows: usize) -> Self {
        RowMatrix {
            width,
            data: Vec::with_capacity(width * rows),
        }
    }

    /// Builds a matrix from materialised rows (test/interop convenience).
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let width = rows.first().map_or(0, Vec::len);
        let mut m = RowMatrix::with_capacity(width, rows.len());
        for row in rows {
            assert_eq!(row.len(), width, "ragged rows");
            m.data.extend_from_slice(row);
        }
        m
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.width).unwrap_or(0)
    }

    /// `true` when the matrix holds no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row width (number of columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.width..(i + 1) * self.width]
    }

    /// First row, if any.
    pub fn first(&self) -> Option<&[f64]> {
        if self.is_empty() {
            None
        } else {
            Some(self.row(0))
        }
    }

    /// Iterates over rows as slices.
    pub fn iter(&self) -> std::slice::ChunksExact<'_, f64> {
        // `chunks_exact(0)` panics; map the empty-width case to a chunk
        // size of 1 over an empty buffer, which yields nothing.
        self.data.chunks_exact(self.width.max(1))
    }

    /// Appends one row by letting `fill` write into the buffer tail. The
    /// callback must append exactly [`width`](Self::width) values.
    ///
    /// # Panics
    ///
    /// Panics if `fill` appends a different number of values.
    pub fn push_row_with(&mut self, fill: impl FnOnce(&mut Vec<f64>)) {
        let before = self.data.len();
        fill(&mut self.data);
        assert_eq!(
            self.data.len() - before,
            self.width,
            "push_row_with must append exactly one row"
        );
    }

    /// Appends one row by copying `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.width()`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.width, "row width mismatch");
        self.data.extend_from_slice(row);
    }

    /// Appends every row of `other`.
    ///
    /// # Panics
    ///
    /// Panics if widths differ (unless `self` is empty, in which case it
    /// adopts `other`'s width).
    pub fn extend_from(&mut self, other: &RowMatrix) {
        if self.data.is_empty() && self.width != other.width {
            self.width = other.width;
        }
        assert_eq!(self.width, other.width, "row width mismatch");
        self.data.extend_from_slice(&other.data);
    }

    /// Removes all rows, retaining the allocation for reuse.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

impl std::fmt::Debug for RowMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RowMatrix({}x{})", self.len(), self.width)
    }
}

impl<'a> IntoIterator for &'a RowMatrix {
    type Item = &'a [f64];
    type IntoIter = std::slice::ChunksExact<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_rows() {
        let mut m = RowMatrix::new(3);
        m.push_row(&[1.0, 2.0, 3.0]);
        m.push_row_with(|buf| buf.extend_from_slice(&[4.0, 5.0, 6.0]));
        assert_eq!(m.len(), 2);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.first(), Some(&[1.0, 2.0, 3.0][..]));
        let rows: Vec<&[f64]> = m.iter().collect();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn from_rows_roundtrips() {
        let m = RowMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.width(), 2);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut m = RowMatrix::with_capacity(4, 8);
        for _ in 0..8 {
            m.push_row(&[0.0; 4]);
        }
        let cap = m.data.capacity();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.data.capacity(), cap);
    }

    #[test]
    fn extend_from_adopts_width() {
        let mut pool = RowMatrix::new(0);
        let a = RowMatrix::from_rows(&[vec![1.0, 2.0]]);
        pool.extend_from(&a);
        pool.extend_from(&a);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.width(), 2);
    }

    #[test]
    #[should_panic(expected = "exactly one row")]
    fn push_row_with_enforces_width() {
        let mut m = RowMatrix::new(2);
        m.push_row_with(|buf| buf.push(1.0));
    }

    #[test]
    fn empty_matrix_iterates_nothing() {
        let m = RowMatrix::new(0);
        assert_eq!(m.iter().count(), 0);
        assert_eq!(m.len(), 0);
        assert!(m.first().is_none());
    }
}

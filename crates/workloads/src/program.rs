//! Synthetic program model and deterministic trace walker.
//!
//! A [`Program`] is a phase-structured control-flow graph of basic blocks
//! with baked-in opcode mixes, register dependence patterns and memory
//! streams. Walking it yields an infinite, deterministic dynamic
//! instruction trace ([`Inst`] stream) with recurring phase behaviour —
//! exactly the structure SimPoint-style interval clustering needs.
//!
//! The model replaces the SPEC CPU2006 binaries of the paper: what the
//! methodology consumes is not SPEC itself but *long workloads with
//! distinct, recurring, performance-orthogonal phases*, which this module
//! synthesises under full control.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::isa::{Inst, Opcode, Reg, FP_REG_BASE, NO_REG};

/// A memory access stream: loads/stores walk a working set with a stride.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemStreamSpec {
    /// Access stride in bytes; `0` means uniformly random within the
    /// working set (pointer-chasing behaviour).
    pub stride: u32,
    /// Working-set size in bytes (power of two recommended).
    pub working_set: u32,
}

/// Statistical description of one program phase.
///
/// A phase is lowered at build time into `n_blocks` concrete basic blocks
/// whose instructions, registers and branch structure are fixed; only
/// memory-stream positions and data-dependent branch outcomes evolve at
/// walk time.
#[derive(Debug, Clone)]
pub struct PhaseSpec {
    /// Relative weights of computational opcodes (loads/stores/branches are
    /// governed by the fractions below and must not appear here).
    pub mix: Vec<(Opcode, f64)>,
    /// Fraction of instructions that are loads.
    pub load_frac: f64,
    /// Fraction of instructions that are stores.
    pub store_frac: f64,
    /// Fraction of conditional-branch block endings that are data-dependent
    /// (hard to predict) rather than loop-style (predictable).
    pub chaotic_branch_frac: f64,
    /// Fraction of block endings that are indirect branches.
    pub indirect_frac: f64,
    /// Number of distinct basic blocks lowered for this phase.
    pub n_blocks: usize,
    /// Mean basic-block length in instructions (min 3).
    pub block_len: usize,
    /// Memory streams available to this phase.
    pub streams: Vec<MemStreamSpec>,
    /// Maximum register-dependence distance when wiring sources to recent
    /// producers (1 = chain every instruction to its predecessor).
    pub dep_distance: usize,
}

impl Default for PhaseSpec {
    fn default() -> Self {
        PhaseSpec {
            mix: vec![(Opcode::Add, 1.0)],
            load_frac: 0.2,
            store_frac: 0.1,
            chaotic_branch_frac: 0.2,
            indirect_frac: 0.0,
            n_blocks: 8,
            block_len: 12,
            streams: vec![MemStreamSpec {
                stride: 8,
                working_set: 1 << 14,
            }],
            dep_distance: 4,
        }
    }
}

/// How a block-ending branch resolves at walk time.
#[derive(Debug, Clone, Copy, PartialEq)]
enum BranchBehavior {
    /// Taken `trip - 1` consecutive times, then not taken once (loop).
    Loop {
        /// Loop trip count.
        trip: u32,
    },
    /// Taken with probability `p` independently each execution.
    Chaotic {
        /// Probability of being taken.
        p: f64,
    },
    /// Indirect: target chosen uniformly among the successors.
    Indirect,
    /// Unconditional jump to the taken successor.
    Always,
}

#[derive(Debug, Clone, Copy)]
struct TemplInst {
    opcode: Opcode,
    size: u8,
    src1: Reg,
    src2: Reg,
    dst: Reg,
    /// Stream index for memory ops (`u8::MAX` otherwise).
    stream: u8,
}

/// One lowered basic block.
#[derive(Debug, Clone)]
struct Block {
    pc_base: u32,
    body: Vec<TemplInst>,
    branch_size: u8,
    behavior: BranchBehavior,
    /// Block index (within the phase) on the taken path.
    succ_taken: usize,
    /// Block index on the fall-through path.
    succ_not: usize,
    /// Extra indirect targets (for [`BranchBehavior::Indirect`]).
    extra_targets: Vec<usize>,
}

impl Block {
    /// Total encoded size in bytes (used to place the next block).
    fn byte_len(&self) -> u32 {
        self.body.iter().map(|t| t.size as u32).sum::<u32>() + self.branch_size as u32
    }
}

#[derive(Debug, Clone)]
struct Phase {
    blocks: Vec<Block>,
    streams: Vec<MemStreamSpec>,
    /// Global id of this phase's first block (for BBV indexing).
    first_block_id: usize,
}

/// One entry of a program's phase schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Phase index to execute.
    pub phase: usize,
    /// How many instructions to emit before moving on.
    pub insts: u64,
}

/// A fully lowered synthetic program.
#[derive(Debug, Clone)]
pub struct Program {
    name: String,
    phases: Vec<Phase>,
    schedule: Vec<Segment>,
    seed: u64,
    n_blocks: usize,
}

impl Program {
    /// Lowers phase specifications into a concrete program.
    ///
    /// `schedule` entries reference `specs` by index; the walker loops the
    /// schedule forever, so any trace length can be drawn.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty, a schedule entry references a missing
    /// phase, or a phase has no blocks/streams where required.
    pub fn build(name: &str, specs: &[PhaseSpec], schedule: Vec<Segment>, seed: u64) -> Self {
        assert!(!specs.is_empty(), "a program needs at least one phase");
        assert!(!schedule.is_empty(), "a program needs a schedule");
        assert!(
            schedule.iter().all(|s| s.phase < specs.len()),
            "schedule references a phase out of range"
        );
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_5eed);
        let mut phases = Vec::with_capacity(specs.len());
        let mut next_block_id = 0usize;
        for (pi, spec) in specs.iter().enumerate() {
            let phase = Self::lower_phase(pi, spec, next_block_id, &mut rng);
            next_block_id += phase.blocks.len();
            phases.push(phase);
        }
        Program {
            name: name.to_string(),
            phases,
            schedule,
            seed,
            n_blocks: next_block_id,
        }
    }

    fn lower_phase(
        pi: usize,
        spec: &PhaseSpec,
        first_block_id: usize,
        rng: &mut SmallRng,
    ) -> Phase {
        assert!(spec.n_blocks >= 2, "phase needs at least 2 blocks");
        assert!(!spec.streams.is_empty() || (spec.load_frac == 0.0 && spec.store_frac == 0.0));
        let mix_total: f64 = spec.mix.iter().map(|(_, w)| w).sum();
        assert!(
            mix_total > 0.0,
            "phase opcode mix must have positive weight"
        );

        let mut blocks = Vec::with_capacity(spec.n_blocks);
        // Ring of recent destination registers for dependence wiring.
        let mut recent: Vec<Reg> = vec![0, 1];
        let mut pc = 0x1000_0000 + (pi as u32) * 0x0010_0000;
        for bi in 0..spec.n_blocks {
            let len = (spec.block_len.max(3) as f64 * (0.6 + rng.gen::<f64>() * 0.8)) as usize;
            let len = len.max(3);
            let mut body = Vec::with_capacity(len);
            for k in 0..len {
                let r: f64 = rng.gen();
                let (opcode, stream) = if r < spec.load_frac {
                    (Opcode::Load, (rng.gen_range(0..spec.streams.len())) as u8)
                } else if r < spec.load_frac + spec.store_frac {
                    (Opcode::Store, (rng.gen_range(0..spec.streams.len())) as u8)
                } else {
                    let mut pick = rng.gen::<f64>() * mix_total;
                    let mut chosen = spec.mix[0].0;
                    for &(op, w) in &spec.mix {
                        if pick < w {
                            chosen = op;
                            break;
                        }
                        pick -= w;
                    }
                    (chosen, u8::MAX)
                };
                let is_fp = matches!(
                    opcode,
                    Opcode::FpAdd | Opcode::FpMul | Opcode::FpDiv | Opcode::VecFp
                );
                let reg_base: Reg = if is_fp { FP_REG_BASE } else { 0 };
                // Wire sources to recent producers within dep_distance.
                let pick_src = |rng: &mut SmallRng, recent: &Vec<Reg>| -> Reg {
                    let d = rng
                        .gen_range(0..spec.dep_distance.max(1))
                        .min(recent.len() - 1);
                    recent[recent.len() - 1 - d]
                };
                let src1 = pick_src(rng, &recent);
                let src2 = if rng.gen::<f64>() < 0.6 {
                    pick_src(rng, &recent)
                } else {
                    NO_REG
                };
                let dst = if opcode == Opcode::Store {
                    NO_REG
                } else {
                    reg_base + rng.gen_range(0..14) as Reg
                };
                if let Some(d) = (dst != NO_REG).then_some(dst) {
                    recent.push(d);
                    if recent.len() > 16 {
                        recent.remove(0);
                    }
                }
                let size = match opcode {
                    Opcode::Load | Opcode::Store => rng.gen_range(3..=7),
                    Opcode::VecInt | Opcode::VecFp => rng.gen_range(4..=9),
                    _ => rng.gen_range(2..=5),
                } as u8;
                let _ = k;
                body.push(TemplInst {
                    opcode,
                    size,
                    src1,
                    src2,
                    dst,
                    stream,
                });
            }

            // Block-ending control flow.
            let behavior = if rng.gen::<f64>() < spec.indirect_frac {
                BranchBehavior::Indirect
            } else if rng.gen::<f64>() < spec.chaotic_branch_frac {
                // Data-dependent branches are biased but not fully
                // predictable (real hard branches mispredict a few percent
                // to ~25%, not 50%).
                let bias = 0.62 + rng.gen::<f64>() * 0.33;
                let p = if rng.gen::<bool>() { bias } else { 1.0 - bias };
                BranchBehavior::Chaotic { p }
            } else if bi + 1 == spec.n_blocks {
                // Last block always loops back so the phase is closed.
                BranchBehavior::Always
            } else {
                BranchBehavior::Loop {
                    trip: rng.gen_range(4..64),
                }
            };
            let succ_taken = if bi + 1 == spec.n_blocks {
                0
            } else {
                // Loop back a few blocks or stay local.
                bi.saturating_sub(rng.gen_range(0..4))
            };
            let succ_not = (bi + 1) % spec.n_blocks;
            let extra_targets = if matches!(behavior, BranchBehavior::Indirect) {
                (0..3).map(|_| rng.gen_range(0..spec.n_blocks)).collect()
            } else {
                Vec::new()
            };
            let branch_size = rng.gen_range(2..=8) as u8;
            let block = Block {
                pc_base: pc,
                body,
                branch_size,
                behavior,
                succ_taken,
                succ_not,
                extra_targets,
            };
            pc += block.byte_len() + rng.gen_range(0..32);
            blocks.push(block);
        }
        Phase {
            blocks,
            streams: spec.streams.clone(),
            first_block_id,
        }
    }

    /// Program name (benchmark identity).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of lowered basic blocks across all phases (the BBV
    /// dimensionality).
    pub fn n_blocks(&self) -> usize {
        self.n_blocks
    }

    /// Number of phases.
    pub fn n_phases(&self) -> usize {
        self.phases.len()
    }

    /// Total instructions in one pass of the schedule.
    pub fn schedule_len(&self) -> u64 {
        self.schedule.iter().map(|s| s.insts).sum()
    }

    /// Creates a fresh deterministic walker over this program's trace.
    pub fn walker(&self) -> Walker<'_> {
        Walker::new(self)
    }
}

/// Per-stream walk-time state.
#[derive(Debug, Clone)]
struct StreamState {
    base: u32,
    pos: u32,
}

/// Deterministic trace generator over a [`Program`].
///
/// The walker is an infinite iterator: the schedule loops forever. Use
/// [`Walker::skip`] to fast-forward to an interval of interest and
/// [`Walker::current_block`] to attribute emitted instructions to basic
/// blocks (for BBV profiling).
#[derive(Debug, Clone)]
pub struct Walker<'a> {
    program: &'a Program,
    rng: SmallRng,
    /// Index into the schedule.
    seg: usize,
    /// Instructions remaining in the current segment.
    seg_left: u64,
    /// Current block index within the current phase.
    block: usize,
    /// Per-(phase, block) loop counters.
    loop_counts: Vec<Vec<u32>>,
    /// Per-(phase, stream) positions.
    streams: Vec<Vec<StreamState>>,
    /// Pending instructions of the current block (reversed for pop).
    pending: Vec<Inst>,
    /// Global id of the block the pending instructions belong to.
    pending_block_id: usize,
}

impl<'a> Walker<'a> {
    fn new(program: &'a Program) -> Self {
        let loop_counts = program
            .phases
            .iter()
            .map(|p| vec![0u32; p.blocks.len()])
            .collect();
        let streams = program
            .phases
            .iter()
            .enumerate()
            .map(|(pi, p)| {
                p.streams
                    .iter()
                    .enumerate()
                    .map(|(si, _)| StreamState {
                        base: 0x4000_0000u32
                            .wrapping_add((pi as u32) << 24)
                            .wrapping_add((si as u32) << 20),
                        pos: 0,
                    })
                    .collect()
            })
            .collect();
        let seg_left = program.schedule[0].insts;
        Walker {
            program,
            rng: SmallRng::seed_from_u64(program.seed ^ 0x77a1_4e55),
            seg: 0,
            seg_left,
            block: 0,
            loop_counts,
            streams,
            pending: Vec::new(),
            pending_block_id: 0,
        }
    }

    /// Global basic-block id of the most recently emitted instruction.
    pub fn current_block(&self) -> usize {
        self.pending_block_id
    }

    /// Emits the next dynamic instruction.
    pub fn next_inst(&mut self) -> Inst {
        if self.pending.is_empty() {
            self.refill();
        }
        if self.seg_left == 0 {
            self.advance_segment();
        }
        self.seg_left -= 1;
        self.pending.pop().expect("refill produced instructions")
    }

    /// Fast-forwards the walker by `n` instructions.
    pub fn skip(&mut self, n: u64) {
        for _ in 0..n {
            self.next_inst();
        }
    }

    /// Collects the next `n` instructions into a vector.
    pub fn take_trace(&mut self, n: usize) -> Vec<Inst> {
        (0..n).map(|_| self.next_inst()).collect()
    }

    fn advance_segment(&mut self) {
        self.seg = (self.seg + 1) % self.program.schedule.len();
        self.seg_left = self.program.schedule[self.seg].insts;
        // Entering a (possibly different) phase: restart at its block 0 but
        // keep loop counters and stream positions so behaviour persists
        // across phase revisits.
        self.block = 0;
    }

    /// Lowers the current block into concrete instructions and advances
    /// control flow.
    fn refill(&mut self) {
        let phase_idx = self.program.schedule[self.seg].phase;
        let phase = &self.program.phases[phase_idx];
        let block_idx = self.block.min(phase.blocks.len() - 1);
        let block = &phase.blocks[block_idx];
        self.pending_block_id = phase.first_block_id + block_idx;

        let mut out = Vec::with_capacity(block.body.len() + 1);
        let mut pc = block.pc_base;
        for t in &block.body {
            let mem_addr = if t.opcode.is_memory() {
                let spec = phase.streams[t.stream as usize];
                let st = &mut self.streams[phase_idx][t.stream as usize];
                let ws = spec.working_set.max(64);
                if spec.stride == 0 {
                    st.pos = (self.rng.gen::<u32>() % (ws / 8)) * 8;
                } else {
                    st.pos = (st.pos + spec.stride) % ws;
                }
                st.base + st.pos
            } else {
                0
            };
            out.push(Inst {
                pc,
                mem_addr,
                target: 0,
                opcode: t.opcode,
                size: t.size,
                src1: t.src1,
                src2: t.src2,
                dst: t.dst,
                taken: false,
            });
            pc += t.size as u32;
        }

        // Resolve the block-ending control transfer.
        let (taken, next_block, opcode) = match block.behavior {
            BranchBehavior::Always => (true, block.succ_taken, Opcode::Jump),
            BranchBehavior::Loop { trip } => {
                let c = &mut self.loop_counts[phase_idx][block_idx];
                *c += 1;
                if *c >= trip {
                    *c = 0;
                    (false, block.succ_not, Opcode::Branch)
                } else {
                    (true, block.succ_taken, Opcode::Branch)
                }
            }
            BranchBehavior::Chaotic { p } => {
                if self.rng.gen::<f64>() < p {
                    (true, block.succ_taken, Opcode::Branch)
                } else {
                    (false, block.succ_not, Opcode::Branch)
                }
            }
            BranchBehavior::Indirect => {
                let pick = self.rng.gen_range(0..block.extra_targets.len() + 1);
                let target = if pick == 0 {
                    block.succ_taken
                } else {
                    block.extra_targets[pick - 1]
                };
                (true, target, Opcode::IndirectBranch)
            }
        };
        let target_pc = phase.blocks[next_block].pc_base;
        out.push(Inst {
            pc,
            mem_addr: 0,
            target: target_pc,
            opcode,
            size: block.branch_size,
            src1: 0,
            src2: NO_REG,
            dst: NO_REG,
            taken,
        });
        self.block = next_block;
        out.reverse();
        self.pending = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::ALL_OPCODES;

    fn tiny_program(seed: u64) -> Program {
        let phase_a = PhaseSpec {
            mix: vec![(Opcode::Add, 2.0), (Opcode::Xor, 1.0)],
            ..PhaseSpec::default()
        };
        let phase_b = PhaseSpec {
            mix: vec![(Opcode::FpMul, 1.0), (Opcode::FpAdd, 1.0)],
            load_frac: 0.3,
            ..PhaseSpec::default()
        };
        Program::build(
            "tiny",
            &[phase_a, phase_b],
            vec![
                Segment {
                    phase: 0,
                    insts: 500,
                },
                Segment {
                    phase: 1,
                    insts: 500,
                },
            ],
            seed,
        )
    }

    #[test]
    fn walker_is_deterministic() {
        let p = tiny_program(7);
        let a: Vec<Inst> = p.walker().take_trace(2000);
        let b: Vec<Inst> = p.walker().take_trace(2000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<Inst> = tiny_program(1).walker().take_trace(1000);
        let b: Vec<Inst> = tiny_program(2).walker().take_trace(1000);
        assert_ne!(a, b);
    }

    #[test]
    fn schedule_switches_phases() {
        let p = tiny_program(3);
        let mut w = p.walker();
        // First segment: integer phase — no FP ops.
        let first: Vec<Inst> = w.take_trace(400);
        assert!(first
            .iter()
            .all(|i| !matches!(i.opcode, Opcode::FpMul | Opcode::FpAdd)));
        // Jump into the second segment and check FP ops appear.
        w.skip(200);
        let second: Vec<Inst> = w.take_trace(400);
        assert!(second
            .iter()
            .any(|i| matches!(i.opcode, Opcode::FpMul | Opcode::FpAdd)));
    }

    #[test]
    fn memory_ops_carry_addresses() {
        let p = tiny_program(4);
        let trace = p.walker().take_trace(3000);
        for i in &trace {
            if i.opcode.is_memory() {
                assert!(i.mem_addr >= 0x4000_0000);
            } else {
                assert_eq!(i.mem_addr, 0);
            }
            if i.opcode.is_control() {
                assert!(i.target >= 0x1000_0000);
            }
        }
    }

    #[test]
    fn skip_matches_consumption() {
        let p = tiny_program(5);
        let mut a = p.walker();
        let mut b = p.walker();
        a.skip(777);
        for _ in 0..777 {
            b.next_inst();
        }
        assert_eq!(a.take_trace(100), b.take_trace(100));
    }

    #[test]
    fn block_ids_within_range() {
        let p = tiny_program(6);
        let mut w = p.walker();
        for _ in 0..5000 {
            w.next_inst();
            assert!(w.current_block() < p.n_blocks());
        }
    }

    #[test]
    fn build_validates_schedule() {
        let spec = PhaseSpec::default();
        let result = std::panic::catch_unwind(|| {
            Program::build(
                "bad",
                &[spec],
                vec![Segment {
                    phase: 3,
                    insts: 10,
                }],
                0,
            )
        });
        assert!(result.is_err());
    }

    #[test]
    fn opcode_mix_respected() {
        // A phase with only Popcnt compute ops must emit Popcnt (plus
        // memory/control glue) and nothing else exotic.
        let spec = PhaseSpec {
            mix: vec![(Opcode::Popcnt, 1.0)],
            load_frac: 0.1,
            store_frac: 0.0,
            ..PhaseSpec::default()
        };
        let p = Program::build(
            "popcnt",
            &[spec],
            vec![Segment {
                phase: 0,
                insts: 100,
            }],
            9,
        );
        let trace = p.walker().take_trace(1000);
        for i in trace {
            assert!(
                matches!(
                    i.opcode,
                    Opcode::Popcnt
                        | Opcode::Load
                        | Opcode::Branch
                        | Opcode::Jump
                        | Opcode::IndirectBranch
                ),
                "unexpected opcode {:?}",
                i.opcode
            );
            assert!(ALL_OPCODES.contains(&i.opcode));
        }
    }
}

//! The dynamic micro-op trace model shared by the simulators.
//!
//! Both the out-of-order core simulator (`perfbug-uarch`) and the memory
//! hierarchy simulator (`perfbug-memsim`) are trace driven: a workload is a
//! deterministic stream of [`Inst`] records carrying everything a timing
//! model needs (opcode class, register operands, effective address, branch
//! outcome and target, instruction size). Because performance bugs are
//! timing-only, the same trace is replayed on every microarchitecture and
//! every injected bug — exactly the property the paper relies on.

/// Architectural register identifier (`0..NUM_ARCH_REGS`).
pub type Reg = u8;

/// Number of architectural registers in the synthetic ISA
/// (16 integer + 16 floating-point).
pub const NUM_ARCH_REGS: usize = 32;

/// First floating-point register; `0..FP_REG_BASE` are integer registers.
pub const FP_REG_BASE: Reg = 16;

/// Sentinel meaning "no register operand".
pub const NO_REG: Reg = u8::MAX;

/// Micro-operation opcode classes of the synthetic ISA.
///
/// Granularity follows what the paper's bugs key on: bugs are parameterised
/// by opcode (`xor`, `sub`, …), so common x86-ish integer opcodes are
/// distinguished rather than collapsed into one ALU class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Opcode {
    /// Integer addition (also covers `lea`-like address arithmetic).
    Add,
    /// Integer subtraction / comparison.
    Sub,
    /// Bitwise exclusive or.
    Xor,
    /// Bitwise and/or/not.
    Logic,
    /// Shifts and rotates.
    Shift,
    /// Integer multiply.
    Mul,
    /// Integer divide.
    Div,
    /// Population count.
    Popcnt,
    /// Floating-point add/sub/compare.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide / sqrt.
    FpDiv,
    /// Integer SIMD operation.
    VecInt,
    /// Floating-point SIMD operation.
    VecFp,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional direct branch.
    Branch,
    /// Unconditional direct jump (includes calls and returns).
    Jump,
    /// Indirect branch/jump (target from a register).
    IndirectBranch,
    /// No-op / fence placeholder.
    Nop,
}

/// All opcodes, for iteration and bug-variant enumeration.
pub const ALL_OPCODES: [Opcode; 19] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Xor,
    Opcode::Logic,
    Opcode::Shift,
    Opcode::Mul,
    Opcode::Div,
    Opcode::Popcnt,
    Opcode::FpAdd,
    Opcode::FpMul,
    Opcode::FpDiv,
    Opcode::VecInt,
    Opcode::VecFp,
    Opcode::Load,
    Opcode::Store,
    Opcode::Branch,
    Opcode::Jump,
    Opcode::IndirectBranch,
    Opcode::Nop,
];

/// Functional-unit class an opcode executes on (the paper's Table III port
/// pools are expressed in these classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Simple integer ALU.
    IntAlu,
    /// Integer multiplier.
    IntMult,
    /// Divider (integer and FP divide share it, as in many real designs).
    Divider,
    /// Floating-point add/compare unit.
    FpUnit,
    /// Floating-point multiplier.
    FpMult,
    /// Vector/SIMD unit.
    Vector,
    /// Load port.
    Load,
    /// Store port.
    Store,
    /// Branch resolution unit.
    Branch,
}

impl Opcode {
    /// The functional-unit class this opcode executes on.
    pub fn fu_class(self) -> FuClass {
        match self {
            Opcode::Add
            | Opcode::Sub
            | Opcode::Xor
            | Opcode::Logic
            | Opcode::Shift
            | Opcode::Popcnt
            | Opcode::Nop => FuClass::IntAlu,
            Opcode::Mul => FuClass::IntMult,
            Opcode::Div => FuClass::Divider,
            Opcode::FpAdd => FuClass::FpUnit,
            Opcode::FpMul => FuClass::FpMult,
            Opcode::FpDiv => FuClass::Divider,
            Opcode::VecInt | Opcode::VecFp => FuClass::Vector,
            Opcode::Load => FuClass::Load,
            Opcode::Store => FuClass::Store,
            Opcode::Branch | Opcode::Jump | Opcode::IndirectBranch => FuClass::Branch,
        }
    }

    /// Whether this opcode transfers control.
    pub fn is_control(self) -> bool {
        matches!(self, Opcode::Branch | Opcode::Jump | Opcode::IndirectBranch)
    }

    /// Whether this opcode accesses memory.
    pub fn is_memory(self) -> bool {
        matches!(self, Opcode::Load | Opcode::Store)
    }
}

/// One dynamic instruction of a workload trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inst {
    /// Program counter of this instruction.
    pub pc: u32,
    /// Effective address for loads/stores (0 otherwise).
    pub mem_addr: u32,
    /// Branch target for control instructions (0 otherwise).
    pub target: u32,
    /// Opcode class.
    pub opcode: Opcode,
    /// Encoded instruction length in bytes (1–15, x86-like).
    pub size: u8,
    /// First source register or [`NO_REG`].
    pub src1: Reg,
    /// Second source register or [`NO_REG`].
    pub src2: Reg,
    /// Destination register or [`NO_REG`].
    pub dst: Reg,
    /// For control instructions: whether the branch is taken.
    pub taken: bool,
}

impl Inst {
    /// A placeholder no-op at the given PC.
    pub fn nop(pc: u32) -> Self {
        Inst {
            pc,
            mem_addr: 0,
            target: 0,
            opcode: Opcode::Nop,
            size: 1,
            src1: NO_REG,
            src2: NO_REG,
            dst: NO_REG,
            taken: false,
        }
    }

    /// Source registers actually present, in order.
    pub fn sources(&self) -> impl Iterator<Item = Reg> + '_ {
        [self.src1, self.src2].into_iter().filter(|&r| r != NO_REG)
    }

    /// Destination register if present.
    pub fn dest(&self) -> Option<Reg> {
        (self.dst != NO_REG).then_some(self.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fu_classes_cover_all_opcodes() {
        for op in ALL_OPCODES {
            // Must not panic, and control/memory predicates are consistent.
            let fu = op.fu_class();
            if op.is_control() {
                assert_eq!(fu, FuClass::Branch);
            }
            if op == Opcode::Load {
                assert_eq!(fu, FuClass::Load);
            }
            if op == Opcode::Store {
                assert_eq!(fu, FuClass::Store);
            }
        }
    }

    #[test]
    fn nop_has_no_operands() {
        let n = Inst::nop(100);
        assert_eq!(n.sources().count(), 0);
        assert_eq!(n.dest(), None);
        assert_eq!(n.pc, 100);
    }

    #[test]
    fn inst_is_compact() {
        // The experiment runner streams millions of these; keep them small.
        assert!(std::mem::size_of::<Inst>() <= 24);
    }
}

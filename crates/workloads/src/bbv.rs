//! Basic-block-vector (BBV) profiling of program traces.
//!
//! SimPoint clusters fixed-length instruction intervals by the frequency of
//! the basic blocks they execute. This module walks a [`Program`] and
//! produces one normalised BBV per interval, optionally randomly projected
//! to a low dimension exactly as SimPoint 3.0 does before clustering.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::program::Program;

/// One interval's normalised basic-block execution-frequency vector.
pub type Bbv = Vec<f64>;

/// Profiles `n_intervals` intervals of `interval_len` instructions each,
/// returning one BBV per interval (dimension = [`Program::n_blocks`]).
///
/// Block counts are weighted by the number of instructions executed in the
/// block (SimPoint's convention) and L1-normalised.
///
/// # Panics
///
/// Panics if `interval_len` or `n_intervals` is zero.
pub fn profile(program: &Program, interval_len: usize, n_intervals: usize) -> Vec<Bbv> {
    assert!(interval_len > 0, "interval length must be positive");
    assert!(n_intervals > 0, "need at least one interval");
    let dim = program.n_blocks();
    let mut walker = program.walker();
    let mut out = Vec::with_capacity(n_intervals);
    for _ in 0..n_intervals {
        let mut counts = vec![0.0f64; dim];
        for _ in 0..interval_len {
            walker.next_inst();
            counts[walker.current_block()] += 1.0;
        }
        let total: f64 = counts.iter().sum();
        if total > 0.0 {
            for c in &mut counts {
                *c /= total;
            }
        }
        out.push(counts);
    }
    out
}

/// Randomly projects BBVs down to `target_dim` dimensions (SimPoint 3.0
/// projects to 15) using a seeded dense Gaussian-ish projection.
///
/// Returns the input unchanged when it is already at or below the target
/// dimension.
pub fn random_project(bbvs: &[Bbv], target_dim: usize, seed: u64) -> Vec<Bbv> {
    let src_dim = bbvs.first().map_or(0, Vec::len);
    if src_dim <= target_dim {
        return bbvs.to_vec();
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9);
    // One projection matrix shared by all vectors.
    let proj: Vec<Vec<f64>> = (0..target_dim)
        .map(|_| (0..src_dim).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect())
        .collect();
    bbvs.iter()
        .map(|v| {
            proj.iter()
                .map(|row| row.iter().zip(v).map(|(p, x)| p * x).sum::<f64>())
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{PhaseSpec, Program, Segment};
    use crate::Opcode;

    fn two_phase_program() -> Program {
        let a = PhaseSpec {
            mix: vec![(Opcode::Add, 1.0)],
            ..PhaseSpec::default()
        };
        let b = PhaseSpec {
            mix: vec![(Opcode::FpMul, 1.0)],
            ..PhaseSpec::default()
        };
        Program::build(
            "two",
            &[a, b],
            vec![
                Segment {
                    phase: 0,
                    insts: 4000,
                },
                Segment {
                    phase: 1,
                    insts: 4000,
                },
            ],
            11,
        )
    }

    #[test]
    fn bbvs_are_normalised() {
        let p = two_phase_program();
        let bbvs = profile(&p, 1000, 8);
        assert_eq!(bbvs.len(), 8);
        for v in &bbvs {
            assert_eq!(v.len(), p.n_blocks());
            let sum: f64 = v.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        }
    }

    #[test]
    fn phases_produce_distinct_bbvs() {
        let p = two_phase_program();
        let bbvs = profile(&p, 1000, 8);
        // Interval 0 (phase A) and interval 4 (phase B) should touch almost
        // disjoint blocks (a partial block may straddle the phase switch).
        let cross: f64 = bbvs[0].iter().zip(&bbvs[4]).map(|(a, b)| a * b).sum();
        let within: f64 = bbvs[0].iter().zip(&bbvs[1]).map(|(a, b)| a * b).sum();
        assert!(
            cross < 0.05,
            "phases should barely share blocks, dot={cross}"
        );
        assert!(
            within > 10.0 * cross,
            "same-phase intervals must be far more similar"
        );
    }

    #[test]
    fn projection_reduces_dimension_deterministically() {
        let p = two_phase_program();
        let bbvs = profile(&p, 500, 6);
        let a = random_project(&bbvs, 4, 3);
        let b = random_project(&bbvs, 4, 3);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| v.len() == 4));
        let c = random_project(&bbvs, 4, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn projection_noop_when_small() {
        let bbvs = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        assert_eq!(random_project(&bbvs, 5, 1), bbvs);
    }
}

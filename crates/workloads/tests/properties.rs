//! Property-based tests for the workload substrate.

use perfbug_workloads::kmeans::kmeans;
use perfbug_workloads::{Opcode, PhaseSpec, Program, Segment};
use proptest::prelude::*;

fn arb_phase() -> impl Strategy<Value = PhaseSpec> {
    (
        2usize..12,   // n_blocks
        3usize..16,   // block_len
        0.0..0.4f64,  // load_frac
        0.0..0.25f64, // store_frac
        0.0..0.7f64,  // chaotic
        0.0..0.3f64,  // indirect
        1usize..8,    // dep distance
    )
        .prop_map(
            |(n_blocks, block_len, load_frac, store_frac, chaotic, indirect, dep)| PhaseSpec {
                mix: vec![(Opcode::Add, 1.0), (Opcode::Xor, 0.5), (Opcode::FpMul, 0.5)],
                load_frac,
                store_frac,
                chaotic_branch_frac: chaotic,
                indirect_frac: indirect,
                n_blocks,
                block_len,
                dep_distance: dep,
                ..PhaseSpec::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_program_walks_deterministically(
        phases in prop::collection::vec(arb_phase(), 1..4),
        seed in any::<u64>(),
    ) {
        let schedule: Vec<Segment> =
            (0..phases.len()).map(|p| Segment { phase: p, insts: 700 }).collect();
        let program = Program::build("prop", &phases, schedule, seed);
        let a = program.walker().take_trace(2500);
        let b = program.walker().take_trace(2500);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn traces_are_well_formed(
        phases in prop::collection::vec(arb_phase(), 1..3),
        seed in any::<u64>(),
    ) {
        let schedule: Vec<Segment> =
            (0..phases.len()).map(|p| Segment { phase: p, insts: 600 }).collect();
        let program = Program::build("prop", &phases, schedule, seed);
        let mut walker = program.walker();
        for _ in 0..2000 {
            let inst = walker.next_inst();
            prop_assert!(inst.size >= 1 && inst.size <= 15, "x86-like sizes");
            prop_assert!(inst.opcode.is_memory() == (inst.mem_addr != 0));
            if inst.opcode.is_control() {
                prop_assert!(inst.target != 0, "control flow must carry a target");
            }
            prop_assert!(walker.current_block() < program.n_blocks());
        }
    }

    #[test]
    fn kmeans_inertia_never_negative_and_assignment_valid(
        pts in prop::collection::vec(prop::collection::vec(-10.0..10.0f64, 3), 4..40),
        k in 1usize..6,
        seed in any::<u64>(),
    ) {
        let result = kmeans(&pts, k, seed, 50);
        prop_assert!(result.inertia >= 0.0);
        prop_assert_eq!(result.assignments.len(), pts.len());
        let k_eff = result.centroids.len();
        prop_assert!(result.assignments.iter().all(|&a| a < k_eff));
    }

    #[test]
    fn kmeans_more_clusters_never_increase_inertia(
        pts in prop::collection::vec(prop::collection::vec(-5.0..5.0f64, 2), 8..30),
        seed in any::<u64>(),
    ) {
        // k-means++ with enough iterations: inertia at k=4 should not be
        // (much) worse than k=1 — a loose sanity bound rather than strict
        // monotonicity (local optima permitting small noise).
        let k1 = kmeans(&pts, 1, seed, 50).inertia;
        let k4 = kmeans(&pts, 4, seed, 100).inertia;
        prop_assert!(k4 <= k1 * 1.001 + 1e-9, "k=4 inertia {k4} vs k=1 {k1}");
    }
}

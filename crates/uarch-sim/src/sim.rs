//! The cycle-level out-of-order core timing model.
//!
//! Trace-driven analogue of gem5's O3CPU at the resource granularity the
//! paper's experiments exercise: a banked front end with branch prediction
//! and an L1I, rename with a finite physical register file, an issue queue
//! scheduled oldest-first onto Table III port/functional-unit pools, a
//! load/store path through a three-level cache hierarchy, and in-order
//! commit from a re-order buffer. All fourteen bug types of §IV-C hook
//! into this loop.

use std::collections::{HashMap, VecDeque};

use perfbug_workloads::{FuClass, Inst, Opcode, RowMatrix};

use crate::branch::BranchPredictor;
use crate::bugs::BugSpec;
use crate::cache::{AccessOutcome, Hierarchy, LINE_BYTES};
use crate::config::MicroarchConfig;
use crate::counters::{Counter, CounterFile, N_COUNTERS};

/// Pipeline depth between fetch and rename, in cycles.
const DECODE_LATENCY: u64 = 3;
/// Front-end buffer capacity in multiples of the pipeline width.
const FRONTEND_BUFFER_FACTOR: usize = 8;

/// Result of simulating one probe trace on one design.
#[derive(Debug, Clone)]
pub struct ProbeRun {
    /// One feature row per time step (raw counter deltas + derived ratios,
    /// see [`crate::counters::counter_names`]), stored contiguously.
    pub counter_rows: RowMatrix,
    /// Per-step IPC (committed instructions per cycle within the step).
    pub ipc: Vec<f64>,
    /// Total simulated cycles.
    pub total_cycles: u64,
    /// Total committed instructions.
    pub total_insts: u64,
}

impl Default for ProbeRun {
    fn default() -> Self {
        Self::empty()
    }
}

impl ProbeRun {
    /// An empty run whose buffers are ready to be filled by
    /// [`simulate_into`].
    pub fn empty() -> Self {
        ProbeRun {
            counter_rows: RowMatrix::new(N_COUNTERS),
            ipc: Vec::new(),
            total_cycles: 0,
            total_insts: 0,
        }
    }

    /// Clears the run for reuse, retaining row and IPC buffer capacity.
    pub fn reset(&mut self) {
        self.counter_rows.clear();
        self.ipc.clear();
        self.total_cycles = 0;
        self.total_insts = 0;
    }

    /// Whole-run IPC.
    pub fn overall_ipc(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.total_insts as f64 / self.total_cycles as f64
        }
    }
}

const NO_DEP: u64 = u64::MAX;

#[derive(Debug, Clone, Copy)]
struct Slot {
    inst: Inst,
    seq: u64,
    deps: [u64; 2],
    /// Earliest cycle issue is permitted (bug delays land here).
    min_issue: u64,
    /// Extra execution latency from bugs.
    extra_exec: u32,
    issued: bool,
    complete_at: u64,
    phys_reg: u32,
    serialized: bool,
    mispredicted: bool,
    /// Bug 16: this instruction's issue grant has already been squashed
    /// and replayed once (each grant is squashed at most once, so replay
    /// storms stay bounded and the watchdog is never tripped).
    replayed: bool,
}

/// Simulates `trace` on `cfg`, optionally with one injected bug, sampling
/// counters every `step_cycles` cycles.
///
/// # Panics
///
/// Panics if `step_cycles` is zero, the configuration is invalid, or the
/// pipeline fails to make forward progress (an internal error).
pub fn simulate(
    cfg: &MicroarchConfig,
    bug: Option<BugSpec>,
    trace: &[Inst],
    step_cycles: u64,
) -> ProbeRun {
    let mut run = ProbeRun::empty();
    simulate_into(cfg, bug, trace, step_cycles, &mut run);
    run
}

/// [`simulate`] into a caller-provided [`ProbeRun`], reusing its row and
/// IPC buffers. Callers that simulate many runs (throughput measurement,
/// benchmarks) recycle one `ProbeRun` and pay no per-run — let alone
/// per-step — row allocations once the buffers have grown to steady state.
///
/// # Panics
///
/// Same contract as [`simulate`].
pub fn simulate_into(
    cfg: &MicroarchConfig,
    bug: Option<BugSpec>,
    trace: &[Inst],
    step_cycles: u64,
    run: &mut ProbeRun,
) {
    assert!(step_cycles > 0, "step_cycles must be positive");
    cfg.validate();
    run.reset();
    assert_eq!(
        run.counter_rows.width(),
        N_COUNTERS,
        "ProbeRun row buffer must be sized for the counter file (use ProbeRun::empty)"
    );
    Pipeline::new(cfg, bug).run(trace, step_cycles, run);
}

struct Pipeline<'c> {
    cfg: &'c MicroarchConfig,
    bug: Option<BugSpec>,
    cycle: u64,
    counters: CounterFile,
    hierarchy: Hierarchy,
    predictor: BranchPredictor,
    // Front end.
    fetch_pos: usize,
    fetch_resume_at: u64,
    fetch_blocked_on_branch: bool,
    last_fetch_line: u32,
    decode_pipe: VecDeque<(u64, Inst, bool)>, // (ready_at, inst, mispredicted)
    // Back end.
    rob: VecDeque<Slot>,
    head_seq: u64,
    next_seq: u64,
    /// Seq numbers of unissued instructions, in program order.
    iq: Vec<u64>,
    lq_count: u32,
    sq_count: u32,
    free_regs: Vec<u32>,
    reg_write_counts: Vec<u32>,
    reg_map: [Option<(u64, Opcode)>; perfbug_workloads::NUM_ARCH_REGS],
    div_busy_until: Vec<u64>,
    store_line_counts: HashMap<u32, u32>,
    mispredict_extra: u32,
    /// Bug 15: direct-mapped data-TLB page slots (`u64::MAX` = invalid)
    /// and the page-walk penalty.
    dtlb: Option<(Vec<u64>, u32)>,
    /// Bug 16: issue grants observed so far (squashed grants included).
    issue_grants: u64,
}

impl<'c> Pipeline<'c> {
    fn new(cfg: &'c MicroarchConfig, bug: Option<BugSpec>) -> Self {
        let mut phys_regs = cfg.phys_regs;
        let mut hierarchy = Hierarchy::new(cfg);
        let mut predictor = BranchPredictor::new(cfg.bp_table_bits, cfg.btb_entries);
        let mut mispredict_extra = 0;
        let mut dtlb = None;
        match bug {
            Some(BugSpec::FewerPhysRegs { n }) => {
                phys_regs = phys_regs.saturating_sub(n).max(cfg.rob_size / 2 + 1);
            }
            Some(BugSpec::L2ExtraLatency { t }) => hierarchy.l2_extra_latency = t,
            Some(BugSpec::BtbIndexMask { lost_bits }) => {
                predictor.set_index_mask_lost_bits(lost_bits);
            }
            Some(BugSpec::MispredictExtraDelay { t }) => mispredict_extra = t,
            Some(BugSpec::TlbPageWalkDelay { entries, t }) => {
                dtlb = Some((vec![u64::MAX; entries.max(1) as usize], t));
            }
            _ => {}
        }
        Pipeline {
            cfg,
            bug,
            cycle: 0,
            counters: CounterFile::new(),
            hierarchy,
            predictor,
            fetch_pos: 0,
            fetch_resume_at: 0,
            fetch_blocked_on_branch: false,
            last_fetch_line: u32::MAX,
            decode_pipe: VecDeque::new(),
            rob: VecDeque::new(),
            head_seq: 0,
            next_seq: 0,
            iq: Vec::new(),
            lq_count: 0,
            sq_count: 0,
            free_regs: (0..phys_regs).collect(),
            reg_write_counts: vec![0; phys_regs as usize],
            reg_map: [None; perfbug_workloads::NUM_ARCH_REGS],
            div_busy_until: vec![0; cfg.ports.len()],
            store_line_counts: HashMap::new(),
            mispredict_extra,
            dtlb,
            issue_grants: 0,
        }
    }

    fn run(mut self, trace: &[Inst], step_cycles: u64, out: &mut ProbeRun) {
        // Delta snapshots are plain value copies of the raw counter array;
        // sampled rows are appended straight into the output's
        // preallocated row matrix — the per-step path allocates nothing
        // once the output buffers reach steady state.
        let mut snapshot = self.counters.snapshot();
        let mut last_sample_cycle = 0u64;
        // Generous watchdog: no healthy or buggy configuration comes close.
        let max_cycles = 400 * trace.len() as u64 + 1_000_000;

        while self.fetch_pos < trace.len() || !self.rob.is_empty() || !self.decode_pipe.is_empty() {
            self.cycle += 1;
            self.counters.inc(Counter::Cycles);
            self.commit();
            self.issue();
            self.rename();
            self.fetch(trace);
            self.counters
                .add(Counter::RobOccupancySum, self.rob.len() as u64);
            self.counters
                .add(Counter::IqOccupancySum, self.iq.len() as u64);

            if self.cycle - last_sample_cycle == step_cycles {
                out.counter_rows
                    .push_row_with(|buf| self.counters.sample_row_into(&snapshot, buf));
                let committed = self.counters.get(Counter::CommittedInsts)
                    - snapshot.get(Counter::CommittedInsts);
                out.ipc.push(committed as f64 / step_cycles as f64);
                snapshot = self.counters.snapshot();
                last_sample_cycle = self.cycle;
            }
            assert!(
                self.cycle < max_cycles,
                "pipeline deadlock on {} at cycle {} (bug {:?})",
                self.cfg.name,
                self.cycle,
                self.bug
            );
        }
        // Keep a trailing partial step if it covers at least half a step.
        let leftover = self.cycle - last_sample_cycle;
        if leftover * 2 >= step_cycles && leftover > 0 {
            out.counter_rows
                .push_row_with(|buf| self.counters.sample_row_into(&snapshot, buf));
            let committed =
                self.counters.get(Counter::CommittedInsts) - snapshot.get(Counter::CommittedInsts);
            out.ipc.push(committed as f64 / leftover as f64);
        }
        out.total_cycles = self.cycle;
        out.total_insts = self.counters.get(Counter::CommittedInsts);
    }

    // ---- commit ----------------------------------------------------------

    fn commit(&mut self) {
        let mut committed = 0;
        while committed < self.cfg.width {
            let Some(front) = self.rob.front() else { break };
            if !front.issued || front.complete_at > self.cycle {
                break;
            }
            let slot = self.rob.pop_front().expect("front checked");
            if slot.phys_reg != u32::MAX {
                self.free_regs.push(slot.phys_reg);
            }
            match slot.inst.opcode {
                Opcode::Load => self.lq_count -= 1,
                Opcode::Store => self.sq_count -= 1,
                _ => {}
            }
            self.head_seq = slot.seq + 1;
            self.counters.inc(Counter::CommittedInsts);
            committed += 1;
        }
        if committed == self.cfg.width {
            self.counters.inc(Counter::MaxCommitCycles);
        } else if committed == 0 {
            self.counters.inc(Counter::CommitIdleCycles);
        }
    }

    // ---- issue -----------------------------------------------------------

    fn deps_ready(&self, slot: &Slot) -> bool {
        slot.deps.iter().all(|&d| {
            if d == NO_DEP || d < self.head_seq {
                return true;
            }
            let idx = (d - self.head_seq) as usize;
            let producer = &self.rob[idx];
            producer.issued && producer.complete_at <= self.cycle
        })
    }

    fn acceptable_fus(op: Opcode) -> &'static [FuClass] {
        match op {
            Opcode::Mul => &[FuClass::IntMult],
            Opcode::Div => &[FuClass::Divider, FuClass::IntMult],
            Opcode::FpAdd => &[FuClass::FpUnit, FuClass::FpMult],
            Opcode::FpMul => &[FuClass::FpMult, FuClass::FpUnit],
            Opcode::FpDiv => &[FuClass::Divider, FuClass::FpUnit],
            Opcode::VecInt | Opcode::VecFp => &[FuClass::Vector, FuClass::FpUnit],
            Opcode::Load => &[FuClass::Load],
            Opcode::Store => &[FuClass::Store],
            Opcode::Branch | Opcode::Jump | Opcode::IndirectBranch => {
                &[FuClass::Branch, FuClass::IntAlu]
            }
            _ => &[FuClass::IntAlu],
        }
    }

    fn exec_latency(&self, op: Opcode) -> u32 {
        match op {
            Opcode::Mul => self.cfg.fu.mul,
            Opcode::Div | Opcode::FpDiv => self.cfg.fu.div,
            Opcode::FpAdd | Opcode::FpMul | Opcode::VecFp => self.cfg.fu.fp,
            Opcode::VecInt => 2,
            _ => 1,
        }
    }

    /// Finds a free port able to execute `op`, honouring the non-pipelined
    /// divider.
    fn allocate_port(&self, op: Opcode, port_used: &[bool]) -> Option<usize> {
        let needs_div = matches!(op, Opcode::Div | Opcode::FpDiv);
        for fu in Self::acceptable_fus(op) {
            for (p, pool) in self.cfg.ports.iter().enumerate() {
                if port_used[p] || !pool.contains(fu) {
                    continue;
                }
                if needs_div && *fu == FuClass::Divider && self.div_busy_until[p] > self.cycle {
                    continue;
                }
                return Some(p);
            }
        }
        None
    }

    fn count_data_outcome(&mut self, outcome: AccessOutcome) {
        self.counters.inc(Counter::L1dAccesses);
        if !outcome.l1_hit {
            self.counters.inc(Counter::L1dMisses);
            self.counters.inc(Counter::L2Accesses);
            if !outcome.l2_hit {
                self.counters.inc(Counter::L2Misses);
                if self.cfg.l3.is_some() {
                    self.counters.inc(Counter::L3Accesses);
                    if !outcome.l3_hit {
                        self.counters.inc(Counter::L3Misses);
                    }
                }
                if outcome.mem {
                    self.counters.inc(Counter::MemAccesses);
                }
            }
        }
    }

    fn count_fu_op(&mut self, op: Opcode) {
        match op.fu_class() {
            FuClass::IntAlu => self.counters.inc(Counter::IntAluOps),
            FuClass::IntMult => self.counters.inc(Counter::IntMulOps),
            FuClass::Divider => self.counters.inc(Counter::DivOps),
            FuClass::FpUnit | FuClass::FpMult => self.counters.inc(Counter::FpOps),
            FuClass::Vector => self.counters.inc(Counter::VecOps),
            _ => {}
        }
    }

    fn issue(&mut self) {
        let mut port_used = vec![false; self.cfg.ports.len()];
        let mut issued = 0u32;

        // The IQ list holds the seq numbers of unissued instructions in
        // program order; scanning it (<= iq_size entries) instead of the
        // whole ROB keeps memory-bound probes cheap.
        let oldest_unissued = self.iq.first().map(|&s| {
            let slot = &self.rob[(s - self.head_seq) as usize];
            (s, slot.inst.opcode)
        });
        // Bug 3: when the oldest unissued instruction has opcode X, only
        // that instruction may issue this cycle.
        let only_oldest = matches!(
            (self.bug, oldest_unissued),
            (Some(BugSpec::IfOldestIssueOnlyX { x }), Some((_, op))) if op == x
        );

        let mut issued_seqs: Vec<u64> = Vec::new();
        for iq_pos in 0..self.iq.len() {
            if issued >= self.cfg.width {
                break;
            }
            let seq = self.iq[iq_pos];
            let rob_idx = (seq - self.head_seq) as usize;
            let slot = &self.rob[rob_idx];
            let op = slot.inst.opcode;

            if only_oldest && Some(seq) != oldest_unissued.map(|(s, _)| s) {
                break; // younger than the gating oldest-X instruction
            }
            // Bug 2: X issues only when it is the oldest unissued.
            if let Some(BugSpec::IssueOnlyIfOldest { x }) = self.bug {
                if op == x && Some(seq) != oldest_unissued.map(|(s, _)| s) {
                    continue;
                }
            }
            // Bug 1: a serialising instruction issues only once it is the
            // oldest unissued instruction, and younger instructions stall
            // until it has been issued (the Fig. 1 "Bug 2" semantics).
            if slot.serialized && Some(seq) != oldest_unissued.map(|(s, _)| s) {
                break;
            }
            let ready = slot.min_issue <= self.cycle && self.deps_ready(slot);
            let port = if ready {
                self.allocate_port(op, &port_used)
            } else {
                None
            };
            match port {
                Some(p) => {
                    port_used[p] = true;
                    // Bug 16: every n-th issue grant is squashed; the
                    // instruction keeps its port for the cycle but replays
                    // t cycles later. Each instruction is squashed at most
                    // once, so the pathology is severe yet bounded.
                    if let Some(BugSpec::IssueReplayEveryN { n, t }) = self.bug {
                        self.issue_grants += 1;
                        if !self.rob[rob_idx].replayed
                            && self.issue_grants.is_multiple_of(n.max(1) as u64)
                        {
                            let slot = &mut self.rob[rob_idx];
                            slot.replayed = true;
                            slot.min_issue = self.cycle + t as u64;
                            continue;
                        }
                    }
                    self.issue_slot(rob_idx, p);
                    issued_seqs.push(seq);
                    issued += 1;
                }
                None => {
                    // Bug 1: an unissued serialising instruction blocks all
                    // younger instructions from issuing.
                    if self.rob[rob_idx].serialized {
                        break;
                    }
                }
            }
        }
        if !issued_seqs.is_empty() {
            self.iq.retain(|s| !issued_seqs.contains(s));
        }
        if issued == 0 {
            self.counters.inc(Counter::IssueIdleCycles);
        }
        self.counters.add(Counter::IssuedInsts, issued as u64);
    }

    fn issue_slot(&mut self, rob_idx: usize, port: usize) {
        let inst = self.rob[rob_idx].inst;
        let extra_exec = self.rob[rob_idx].extra_exec;
        let mispredicted = self.rob[rob_idx].mispredicted;
        let op = inst.opcode;
        self.count_fu_op(op);

        let mut latency = self.exec_latency(op) + extra_exec;
        // Bug 15: loads and stores translate through an undersized
        // direct-mapped data TLB; a miss pays the page-walk penalty on the
        // access's critical path.
        if matches!(op, Opcode::Load | Opcode::Store) {
            if let Some((slots, walk)) = self.dtlb.as_mut() {
                let page = (inst.mem_addr >> 12) as u64;
                let idx = (page % slots.len() as u64) as usize;
                if slots[idx] != page {
                    slots[idx] = page;
                    latency += *walk;
                }
            }
        }
        match op {
            Opcode::Load => {
                self.counters.inc(Counter::Loads);
                let outcome = self.hierarchy.access_data(inst.mem_addr);
                self.count_data_outcome(outcome);
                latency += outcome.latency;
                if !outcome.l1_hit {
                    self.counters
                        .add(Counter::LoadStoreStallCycles, outcome.latency as u64);
                }
            }
            Opcode::Store => {
                self.counters.inc(Counter::Stores);
                let outcome = self.hierarchy.access_data(inst.mem_addr);
                self.count_data_outcome(outcome);
                // Stores retire through the store buffer; their cache fill
                // happens off the critical path, but bug 8 gates the buffer.
                if let Some(BugSpec::StoresToLineDelay { n, t }) = self.bug {
                    let line = inst.mem_addr / LINE_BYTES;
                    let count = self.store_line_counts.entry(line).or_insert(0);
                    *count += 1;
                    if *count > n {
                        latency += t;
                    }
                }
            }
            _ => {}
        }
        if matches!(op, Opcode::Div | Opcode::FpDiv) {
            // Non-pipelined divider: hold the port.
            self.div_busy_until[port] = self.cycle + latency as u64;
        }
        let complete_at = self.cycle + latency as u64;
        {
            let slot = &mut self.rob[rob_idx];
            slot.issued = true;
            slot.complete_at = complete_at;
        }
        if mispredicted {
            // The front end was waiting on this branch: resume after it
            // resolves plus the refill penalty (bug 7 adds to it).
            self.fetch_blocked_on_branch = false;
            self.fetch_resume_at =
                complete_at + self.cfg.mispredict_penalty as u64 + self.mispredict_extra as u64;
        }
    }

    // ---- rename / dispatch -----------------------------------------------

    fn rename(&mut self) {
        let mut renamed = 0;
        while renamed < self.cfg.width {
            let Some(&(ready_at, inst, mispredicted)) = self.decode_pipe.front() else {
                break;
            };
            if ready_at > self.cycle {
                break;
            }
            // Structural hazards.
            if self.rob.len() as u32 >= self.cfg.rob_size {
                self.counters.inc(Counter::RobFullStalls);
                self.counters.inc(Counter::RenameStallCycles);
                break;
            }
            if self.iq.len() as u32 >= self.cfg.iq_size {
                self.counters.inc(Counter::IqFullStalls);
                self.counters.inc(Counter::RenameStallCycles);
                break;
            }
            match inst.opcode {
                Opcode::Load if self.lq_count >= self.cfg.lq_size => {
                    self.counters.inc(Counter::LqFullStalls);
                    self.counters.inc(Counter::RenameStallCycles);
                    break;
                }
                Opcode::Store if self.sq_count >= self.cfg.sq_size => {
                    self.counters.inc(Counter::SqFullStalls);
                    self.counters.inc(Counter::RenameStallCycles);
                    break;
                }
                _ => {}
            }
            let needs_reg = inst.dest().is_some();
            if needs_reg && self.free_regs.is_empty() {
                self.counters.inc(Counter::PhysRegStalls);
                self.counters.inc(Counter::RenameStallCycles);
                break;
            }

            self.decode_pipe.pop_front();
            let seq = self.next_seq;
            self.next_seq += 1;
            self.counters.inc(Counter::DecodedInsts);
            self.counters.inc(Counter::RenamedInsts);

            // Wire source dependences.
            let mut deps = [NO_DEP; 2];
            let mut dep_ops = [Opcode::Nop; 2];
            for (i, src) in inst.sources().enumerate() {
                self.counters.inc(Counter::RegReads);
                if let Some((producer_seq, producer_op)) = self.reg_map[src as usize] {
                    deps[i] = producer_seq;
                    dep_ops[i] = producer_op;
                }
            }
            let min_issue = self.cycle + 1;
            let mut extra_exec = 0u32;
            let mut serialized = false;
            let phys_reg = if needs_reg {
                self.counters.inc(Counter::RegWrites);
                let r = self.free_regs.pop().expect("free list checked");
                self.reg_write_counts[r as usize] += 1;
                if let Some(BugSpec::WritesToRegDelay { n, t, periodic }) = self.bug {
                    let count = self.reg_write_counts[r as usize];
                    let fires = if periodic {
                        count.is_multiple_of(n)
                    } else {
                        count > n
                    };
                    if fires {
                        extra_exec += t;
                    }
                }
                r
            } else {
                u32::MAX
            };

            match self.bug {
                Some(BugSpec::SerializeOpcode { x }) if inst.opcode == x => serialized = true,
                Some(BugSpec::DelayIfDependsOn { x, y, t }) if inst.opcode == x => {
                    let depends_on_y = deps
                        .iter()
                        .zip(&dep_ops)
                        .any(|(&d, &op)| d != NO_DEP && op == y);
                    if depends_on_y {
                        extra_exec += t;
                    }
                }
                Some(BugSpec::IqBelowDelay { n, t })
                    if self.cfg.iq_size - (self.iq.len() as u32) < n =>
                {
                    extra_exec += t;
                }
                Some(BugSpec::RobBelowDelay { n, t })
                    if self.cfg.rob_size - (self.rob.len() as u32) < n =>
                {
                    extra_exec += t;
                }
                Some(BugSpec::LongBranchDelay { bytes, t })
                    if inst.opcode.is_control() && inst.size > bytes =>
                {
                    extra_exec += t;
                }
                Some(BugSpec::OpcodeUsesRegDelay { x, r, t }) if inst.opcode == x => {
                    let uses = inst.sources().any(|s| s == r) || inst.dest() == Some(r);
                    if uses {
                        extra_exec += t;
                    }
                }
                _ => {}
            }

            if let Some(dst) = inst.dest() {
                self.reg_map[dst as usize] = Some((seq, inst.opcode));
            }
            match inst.opcode {
                Opcode::Load => self.lq_count += 1,
                Opcode::Store => self.sq_count += 1,
                _ => {}
            }
            self.iq.push(seq);
            self.rob.push_back(Slot {
                inst,
                seq,
                deps,
                min_issue,
                extra_exec,
                issued: false,
                complete_at: u64::MAX,
                phys_reg,
                serialized,
                mispredicted,
                replayed: false,
            });
            renamed += 1;
        }
    }

    // ---- fetch -----------------------------------------------------------

    fn fetch(&mut self, trace: &[Inst]) {
        if self.fetch_pos >= trace.len() {
            return;
        }
        if self.decode_pipe.len() >= FRONTEND_BUFFER_FACTOR * self.cfg.width as usize {
            return; // front-end buffer full; not a stall of interest
        }
        if self.fetch_blocked_on_branch || self.cycle < self.fetch_resume_at {
            self.counters.inc(Counter::FetchStallCycles);
            if self.fetch_blocked_on_branch || self.fetch_resume_at > 0 {
                self.counters.inc(Counter::MispredictStallCycles);
            }
            return;
        }
        for _ in 0..self.cfg.width {
            if self.fetch_pos >= trace.len() {
                break;
            }
            let inst = trace[self.fetch_pos];
            let line = inst.pc / LINE_BYTES;
            if line != self.last_fetch_line {
                self.counters.inc(Counter::IcacheAccesses);
                let outcome = self.hierarchy.access_inst(inst.pc);
                self.last_fetch_line = line;
                if !outcome.l1_hit {
                    self.counters.inc(Counter::IcacheMisses);
                    self.fetch_resume_at = self.cycle + outcome.latency as u64;
                    break; // refill; this instruction fetches afterwards
                }
            }
            self.fetch_pos += 1;
            self.counters.inc(Counter::FetchedInsts);
            let mut mispredicted = false;
            if inst.opcode.is_control() {
                self.counters.inc(Counter::BranchInsts);
                if inst.opcode == Opcode::Branch {
                    self.counters.inc(Counter::CondBranches);
                }
                if inst.taken {
                    self.counters.inc(Counter::TakenBranches);
                }
                let prediction = self.predictor.predict_and_train(&inst);
                if prediction.indirect {
                    self.counters.inc(Counter::IndirectBranches);
                }
                if !prediction.correct {
                    self.counters.inc(Counter::Mispredicts);
                    if prediction.indirect {
                        self.counters.inc(Counter::IndirectMispredicts);
                    }
                    mispredicted = true;
                }
            }
            self.decode_pipe
                .push_back((self.cycle + DECODE_LATENCY, inst, mispredicted));
            if mispredicted {
                // The wrong path would be fetched from here; in a
                // trace-driven model the front end simply waits for the
                // branch to resolve.
                self.fetch_blocked_on_branch = true;
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use perfbug_workloads::{benchmark, WorkloadScale};

    fn probe_trace() -> Vec<Inst> {
        let scale = WorkloadScale::tiny();
        let spec = benchmark("458.sjeng").expect("suite benchmark");
        let program = spec.program(&scale);
        let probes = spec.probes(&scale);
        probes[0].trace(&program)
    }

    #[test]
    fn simulation_commits_whole_trace() {
        let trace = probe_trace();
        let run = simulate(&presets::skylake(), None, &trace, 500);
        assert_eq!(run.total_insts, trace.len() as u64);
        assert!(run.total_cycles > 0);
        let ipc = run.overall_ipc();
        assert!(
            ipc > 0.1 && ipc <= presets::skylake().width as f64,
            "ipc {ipc}"
        );
    }

    #[test]
    fn deterministic() {
        let trace = probe_trace();
        let a = simulate(&presets::skylake(), None, &trace, 500);
        let b = simulate(&presets::skylake(), None, &trace, 500);
        assert_eq!(a.counter_rows, b.counter_rows);
        assert_eq!(a.ipc, b.ipc);
    }

    #[test]
    fn wide_core_beats_narrow_core() {
        let trace = probe_trace();
        let fast = simulate(&presets::skylake(), None, &trace, 500);
        let slow = simulate(&presets::k8(), None, &trace, 500);
        assert!(
            fast.overall_ipc() > slow.overall_ipc(),
            "Skylake {} !> K8 {}",
            fast.overall_ipc(),
            slow.overall_ipc()
        );
    }

    #[test]
    fn per_step_ipc_bounded_by_width() {
        let trace = probe_trace();
        let cfg = presets::skylake();
        let run = simulate(&cfg, None, &trace, 500);
        assert!(!run.ipc.is_empty());
        for &v in &run.ipc {
            assert!(v >= 0.0 && v <= cfg.width as f64);
        }
    }

    #[test]
    fn serialize_bug_slows_the_core() {
        let trace = probe_trace();
        // Serialise the most common compute opcode so the bug has targets.
        let mut counts = std::collections::HashMap::new();
        for i in &trace {
            if !i.opcode.is_control() && !i.opcode.is_memory() {
                *counts.entry(i.opcode).or_insert(0usize) += 1;
            }
        }
        let (&victim, _) = counts
            .iter()
            .max_by_key(|(_, &c)| c)
            .expect("compute ops exist");
        let cfg = presets::skylake();
        let healthy = simulate(&cfg, None, &trace, 500);
        let buggy = simulate(
            &cfg,
            Some(BugSpec::SerializeOpcode { x: victim }),
            &trace,
            500,
        );
        assert!(
            buggy.total_cycles > healthy.total_cycles,
            "serialising {victim:?} must cost cycles ({} !> {})",
            buggy.total_cycles,
            healthy.total_cycles
        );
    }

    #[test]
    fn l2_latency_bug_slows_l2_resident_code() {
        // Dependent loads striding through a 128 KiB region: misses L1D
        // (32 KiB) but lives in L2 (256 KiB) after one warm-up pass, so
        // nearly every load is an L2 hit — exactly what bug 10 taxes.
        let mut trace = Vec::new();
        let region = 128 * 1024u32;
        let mut addr = 0x4000_0000u32;
        for i in 0..12_000u32 {
            let mut ld = Inst::nop(0x1000 + (i % 64) * 4);
            ld.opcode = Opcode::Load;
            ld.mem_addr = addr;
            ld.dst = 1;
            ld.src1 = 1; // dependent chain: no overlap hides the latency
            trace.push(ld);
            addr = 0x4000_0000 + ((addr - 0x4000_0000) + 64) % region;
        }
        let cfg = presets::skylake();
        let healthy = simulate(&cfg, None, &trace, 500);
        let buggy = simulate(&cfg, Some(BugSpec::L2ExtraLatency { t: 20 }), &trace, 500);
        assert!(
            buggy.total_cycles > healthy.total_cycles,
            "L2 tax must cost cycles ({} !> {})",
            buggy.total_cycles,
            healthy.total_cycles
        );
    }

    #[test]
    fn mispredict_penalty_bug_slows_branchy_code() {
        let trace = probe_trace();
        let cfg = presets::skylake();
        let healthy = simulate(&cfg, None, &trace, 500);
        let buggy = simulate(
            &cfg,
            Some(BugSpec::MispredictExtraDelay { t: 30 }),
            &trace,
            500,
        );
        assert!(buggy.total_cycles > healthy.total_cycles);
    }

    #[test]
    fn counter_rows_match_counter_names() {
        let trace = probe_trace();
        let run = simulate(&presets::skylake(), None, &trace, 500);
        let names = crate::counters::counter_names();
        for row in &run.counter_rows {
            assert_eq!(row.len(), names.len());
            assert!(row.iter().all(|v| v.is_finite()));
        }
        assert_eq!(run.counter_rows.len(), run.ipc.len());
    }

    #[test]
    fn fewer_regs_bug_reduces_effective_window() {
        let trace = probe_trace();
        let cfg = presets::skylake();
        let healthy = simulate(&cfg, None, &trace, 500);
        let buggy = simulate(&cfg, Some(BugSpec::FewerPhysRegs { n: 200 }), &trace, 500);
        assert!(buggy.total_cycles >= healthy.total_cycles);
    }

    #[test]
    fn tlb_bug_slows_page_striding_loads() {
        // Dependent loads touching a new 4 KiB page each time: with only
        // 4 TLB slots every access conflict-misses and pays the walk.
        let mut trace = Vec::new();
        for i in 0..6_000u32 {
            let mut ld = Inst::nop(0x1000 + (i % 64) * 4);
            ld.opcode = Opcode::Load;
            ld.mem_addr = 0x4000_0000 + (i % 64) * 4096;
            ld.dst = 1;
            ld.src1 = 1; // dependent chain: walks serialise
            trace.push(ld);
        }
        let cfg = presets::skylake();
        let healthy = simulate(&cfg, None, &trace, 500);
        let buggy = simulate(
            &cfg,
            Some(BugSpec::TlbPageWalkDelay { entries: 4, t: 40 }),
            &trace,
            500,
        );
        assert!(
            buggy.total_cycles > healthy.total_cycles,
            "TLB walks must cost cycles ({} !> {})",
            buggy.total_cycles,
            healthy.total_cycles
        );
    }

    #[test]
    fn tlb_bug_is_mild_on_page_resident_code() {
        // The same page over and over: after one walk everything hits even
        // in a tiny TLB, so the bug barely moves single-page code.
        let mut trace = Vec::new();
        for i in 0..4_000u32 {
            let mut ld = Inst::nop(0x1000 + (i % 64) * 4);
            ld.opcode = Opcode::Load;
            ld.mem_addr = 0x4000_0000 + (i % 16) * 8;
            ld.dst = 1;
            ld.src1 = 1;
            trace.push(ld);
        }
        let cfg = presets::skylake();
        let healthy = simulate(&cfg, None, &trace, 500);
        let buggy = simulate(
            &cfg,
            Some(BugSpec::TlbPageWalkDelay { entries: 4, t: 40 }),
            &trace,
            500,
        );
        let slowdown = buggy.total_cycles as f64 / healthy.total_cycles as f64;
        assert!(
            slowdown < 1.02,
            "page-resident code should be nearly unaffected (slowdown {slowdown})"
        );
    }

    #[test]
    fn replay_bug_slows_the_core_and_terminates() {
        let trace = probe_trace();
        let cfg = presets::skylake();
        let healthy = simulate(&cfg, None, &trace, 500);
        let buggy = simulate(
            &cfg,
            Some(BugSpec::IssueReplayEveryN { n: 4, t: 12 }),
            &trace,
            500,
        );
        assert!(
            buggy.total_cycles > healthy.total_cycles,
            "replay storms must cost cycles ({} !> {})",
            buggy.total_cycles,
            healthy.total_cycles
        );
        // The retired stream is unchanged: same instruction count.
        assert_eq!(buggy.total_insts, healthy.total_insts);
    }
}

//! Microarchitecture configuration: the knobs of Tables II and III.

use perfbug_workloads::FuClass;

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Capacity in bytes.
    pub size: u64,
    /// Associativity (ways).
    pub assoc: u32,
    /// Load-to-use latency in cycles when this level hits.
    pub latency: u32,
}

impl CacheConfig {
    /// Convenience constructor: `size` in KiB.
    pub fn kib(size_kib: u64, assoc: u32, latency: u32) -> Self {
        CacheConfig {
            size: size_kib * 1024,
            assoc,
            latency,
        }
    }

    /// Convenience constructor: `size` in MiB.
    pub fn mib(size_mib: u64, assoc: u32, latency: u32) -> Self {
        CacheConfig {
            size: size_mib * 1024 * 1024,
            assoc,
            latency,
        }
    }
}

/// Functional-unit latencies (Table II's "FP / Multiplier / Divider").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuLatency {
    /// Floating-point add/mul/vector latency.
    pub fp: u32,
    /// Integer multiplier latency.
    pub mul: u32,
    /// Divider latency (integer and FP divides).
    pub div: u32,
}

/// Which of the paper's disjoint microarchitecture sets a design belongs to.
///
/// * Set I trains the stage-1 IPC models.
/// * Set II validates stage-1 training and provides stage-2 labels.
/// * Set III provides additional stage-2 labels.
/// * Set IV is reserved for final testing (all real designs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchSet {
    /// Stage-1 training designs.
    I,
    /// Stage-1 validation / stage-2 training designs.
    II,
    /// Additional stage-2 training designs.
    III,
    /// Held-out test designs (real microarchitectures only).
    IV,
}

/// Full configuration of a simulated out-of-order core.
#[derive(Debug, Clone, PartialEq)]
pub struct MicroarchConfig {
    /// Design name (e.g. `Skylake`, `Artificial 3`).
    pub name: String,
    /// Experiment-set membership (Table II, leftmost column).
    pub set: ArchSet,
    /// Whether this models a real commercial design.
    pub real: bool,
    /// Core clock in GHz (affects memory latency in cycles).
    pub clock_ghz: f64,
    /// Pipeline width (fetch/decode/rename/issue/commit per cycle).
    pub width: u32,
    /// Re-order buffer capacity.
    pub rob_size: u32,
    /// Instruction-queue (scheduler) capacity.
    pub iq_size: u32,
    /// Load-queue capacity.
    pub lq_size: u32,
    /// Store-queue capacity.
    pub sq_size: u32,
    /// Physical register file size (shared int/fp pool).
    pub phys_regs: u32,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Optional L3.
    pub l3: Option<CacheConfig>,
    /// Main-memory latency in nanoseconds.
    pub mem_latency_ns: f64,
    /// Functional-unit latencies.
    pub fu: FuLatency,
    /// Issue ports: each port lists the functional units reachable through
    /// it (Table III). One instruction per port per cycle.
    pub ports: Vec<Vec<FuClass>>,
    /// Branch-predictor global-history table bits (2^bits counters).
    pub bp_table_bits: u32,
    /// Branch-target-buffer entries (power of two).
    pub btb_entries: u32,
    /// Front-end refill penalty in cycles after a branch mispredict
    /// resolves.
    pub mispredict_penalty: u32,
}

impl MicroarchConfig {
    /// Main-memory latency in core cycles.
    pub fn mem_latency_cycles(&self) -> u32 {
        (self.mem_latency_ns * self.clock_ghz).round().max(1.0) as u32
    }

    /// Execution latency of an instruction class on this design.
    pub fn fu_latency(&self, fu: FuClass) -> u32 {
        match fu {
            FuClass::IntAlu => 1,
            FuClass::IntMult => self.fu.mul,
            FuClass::Divider => self.fu.div,
            FuClass::FpUnit | FuClass::FpMult => self.fu.fp,
            FuClass::Vector => 2,
            FuClass::Load => 1, // address generation; cache adds the rest
            FuClass::Store => 1,
            FuClass::Branch => 1,
        }
    }

    /// Names of the microarchitectural design-parameter features exposed to
    /// the stage-1 models (§III-C: "clock cycle, pipeline width, re-order
    /// buffer size and some cache characteristics").
    pub fn feature_names() -> &'static [&'static str] {
        &[
            "arch.clock_ghz",
            "arch.width",
            "arch.rob_size",
            "arch.iq_size",
            "arch.phys_regs",
            "arch.l1d_kib",
            "arch.l1d_assoc",
            "arch.l1d_latency",
            "arch.l2_kib",
            "arch.l2_assoc",
            "arch.l2_latency",
            "arch.l3_mib",
            "arch.l3_latency",
            "arch.fp_latency",
            "arch.mul_latency",
            "arch.div_latency",
            "arch.n_ports",
        ]
    }

    /// The static design-parameter feature vector (constant across a run).
    pub fn feature_vector(&self) -> Vec<f64> {
        vec![
            self.clock_ghz,
            self.width as f64,
            self.rob_size as f64,
            self.iq_size as f64,
            self.phys_regs as f64,
            self.l1d.size as f64 / 1024.0,
            self.l1d.assoc as f64,
            self.l1d.latency as f64,
            self.l2.size as f64 / 1024.0,
            self.l2.assoc as f64,
            self.l2.latency as f64,
            self.l3.map_or(0.0, |c| c.size as f64 / (1024.0 * 1024.0)),
            self.l3.map_or(0.0, |c| c.latency as f64),
            self.fu.fp as f64,
            self.fu.mul as f64,
            self.fu.div as f64,
            self.ports.len() as f64,
        ]
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics when a structural invariant is violated (zero width, no
    /// ports, missing load/store port, ROB smaller than width, …).
    pub fn validate(&self) {
        assert!(self.width >= 1, "{}: width must be >= 1", self.name);
        assert!(
            self.rob_size >= 2 * self.width,
            "{}: ROB too small",
            self.name
        );
        assert!(self.iq_size >= self.width, "{}: IQ too small", self.name);
        assert!(
            !self.ports.is_empty(),
            "{}: needs at least one port",
            self.name
        );
        let has = |fu: FuClass| self.ports.iter().any(|p| p.contains(&fu));
        assert!(has(FuClass::Load), "{}: no load port", self.name);
        assert!(has(FuClass::Store), "{}: no store port", self.name);
        // Branches fall back to integer ALUs on designs without a
        // dedicated branch unit (e.g. the K8-style port organisation).
        assert!(has(FuClass::IntAlu), "{}: no integer ALU", self.name);
        assert!(
            self.phys_regs > self.rob_size / 2,
            "{}: physical register file unrealistically small",
            self.name
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn feature_vector_matches_names() {
        let cfg = presets::skylake();
        assert_eq!(
            cfg.feature_vector().len(),
            MicroarchConfig::feature_names().len()
        );
    }

    #[test]
    fn mem_latency_scales_with_clock() {
        let mut cfg = presets::skylake();
        cfg.clock_ghz = 4.0;
        let fast = cfg.mem_latency_cycles();
        cfg.clock_ghz = 2.0;
        let slow = cfg.mem_latency_cycles();
        assert_eq!(fast, 2 * slow);
    }

    #[test]
    fn cache_constructors() {
        assert_eq!(CacheConfig::kib(32, 8, 4).size, 32 * 1024);
        assert_eq!(CacheConfig::mib(8, 16, 34).size, 8 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "width must be")]
    fn validate_rejects_zero_width() {
        let mut cfg = presets::skylake();
        cfg.width = 0;
        cfg.validate();
    }
}

//! The twenty microarchitecture presets of Tables II and III.
//!
//! Eight real designs (Intel Broadwell, Cedarview, Ivybridge, Skylake,
//! Silvermont; AMD Jaguar, K8, K10) and twelve artificial ones with
//! realistic settings, partitioned into the paper's four disjoint sets:
//! Set I trains stage-1 models, Set II validates them and labels stage 2,
//! Set III adds stage-2 labels, Set IV (all real) is held out for testing.

use perfbug_workloads::FuClass;

use crate::config::{ArchSet, CacheConfig, FuLatency, MicroarchConfig};

fn skylake_ports() -> Vec<Vec<FuClass>> {
    use FuClass::*;
    vec![
        vec![IntAlu, Vector, FpUnit, IntMult, Divider, Branch],
        vec![IntAlu, Vector, FpMult, FpUnit, IntMult],
        vec![Load],
        vec![Load],
        vec![Store],
        vec![IntAlu, Vector],
        vec![IntAlu, Branch],
    ]
}

fn broadwell_ports() -> Vec<Vec<FuClass>> {
    use FuClass::*;
    vec![
        vec![IntAlu, FpMult, FpUnit, Vector, IntMult, Divider, Branch],
        vec![IntAlu, Vector, FpMult, IntMult],
        vec![Load],
        vec![Load],
        vec![Store],
        vec![IntAlu, Vector],
        vec![IntAlu, Branch],
    ]
}

fn cedarview_ports() -> Vec<Vec<FuClass>> {
    use FuClass::*;
    vec![
        vec![IntAlu, Load, Store, Vector, IntMult, Divider],
        vec![IntAlu, Vector, FpUnit, Branch],
        vec![Load],
        vec![Store],
    ]
}

fn jaguar_ports() -> Vec<Vec<FuClass>> {
    use FuClass::*;
    vec![
        vec![IntAlu, Vector],
        vec![IntAlu, Vector],
        vec![FpUnit, IntMult],
        vec![FpMult, Divider],
        vec![Load],
        vec![Store],
    ]
}

fn silvermont_ports() -> Vec<Vec<FuClass>> {
    use FuClass::*;
    vec![
        vec![Load, Store],
        vec![IntAlu, IntMult],
        vec![IntAlu, Branch],
        vec![FpMult, Divider],
        vec![FpUnit],
    ]
}

fn ivybridge_ports() -> Vec<Vec<FuClass>> {
    use FuClass::*;
    vec![
        vec![IntAlu, Vector, FpMult, Divider],
        vec![IntAlu, Vector, IntMult, FpUnit],
        vec![Load],
        vec![Load],
        vec![Store],
        vec![IntAlu, Vector, Branch, FpUnit],
    ]
}

fn k8_ports() -> Vec<Vec<FuClass>> {
    use FuClass::*;
    vec![
        vec![IntAlu, Vector, IntMult],
        vec![IntAlu, Vector],
        vec![IntAlu, Vector],
        vec![Load],
        vec![Store],
        vec![FpUnit],
        vec![FpUnit],
    ]
}

#[allow(clippy::too_many_arguments)]
fn arch(
    name: &str,
    set: ArchSet,
    real: bool,
    clock_ghz: f64,
    width: u32,
    rob_size: u32,
    l1: CacheConfig,
    l2: CacheConfig,
    l3: Option<CacheConfig>,
    fu: FuLatency,
    ports: Vec<Vec<FuClass>>,
) -> MicroarchConfig {
    let cfg = MicroarchConfig {
        name: name.to_string(),
        set,
        real,
        clock_ghz,
        width,
        rob_size,
        iq_size: (rob_size / 2).clamp(16, 64),
        lq_size: (rob_size / 2).clamp(12, 72),
        sq_size: (rob_size / 3).clamp(8, 56),
        phys_regs: rob_size + 48,
        l1i: l1,
        l1d: l1,
        l2,
        l3,
        mem_latency_ns: 80.0,
        fu,
        ports,
        bp_table_bits: 12,
        btb_entries: 4096,
        mispredict_penalty: 8,
    };
    cfg.validate();
    cfg
}

/// Intel Broadwell (Set I).
pub fn broadwell() -> MicroarchConfig {
    arch(
        "Broadwell",
        ArchSet::I,
        true,
        4.0,
        4,
        192,
        CacheConfig::kib(32, 8, 4),
        CacheConfig::kib(256, 8, 12),
        Some(CacheConfig::mib(64, 16, 59)),
        FuLatency {
            fp: 5,
            mul: 3,
            div: 20,
        },
        broadwell_ports(),
    )
}

/// Intel Cedarview-like superscalar with out-of-order completion (Set I).
pub fn cedarview() -> MicroarchConfig {
    arch(
        "Cedarview",
        ArchSet::I,
        true,
        1.8,
        2,
        32,
        CacheConfig::kib(32, 8, 3),
        CacheConfig::kib(512, 8, 15),
        None,
        FuLatency {
            fp: 5,
            mul: 4,
            div: 30,
        },
        cedarview_ports(),
    )
}

/// AMD Jaguar (Set I).
pub fn jaguar() -> MicroarchConfig {
    arch(
        "Jaguar",
        ArchSet::I,
        true,
        1.8,
        2,
        56,
        CacheConfig::kib(32, 8, 3),
        CacheConfig::mib(2, 16, 26),
        None,
        FuLatency {
            fp: 4,
            mul: 3,
            div: 20,
        },
        jaguar_ports(),
    )
}

/// Artificial 2 (Set I).
pub fn artificial2() -> MicroarchConfig {
    arch(
        "Artificial 2",
        ArchSet::I,
        false,
        4.0,
        8,
        168,
        CacheConfig::kib(32, 2, 5),
        CacheConfig::kib(256, 8, 16),
        None,
        FuLatency {
            fp: 4,
            mul: 4,
            div: 20,
        },
        skylake_ports(),
    )
}

/// Artificial 3 (Set I).
pub fn artificial3() -> MicroarchConfig {
    arch(
        "Artificial 3",
        ArchSet::I,
        false,
        3.0,
        8,
        32,
        CacheConfig::kib(32, 2, 3),
        CacheConfig::kib(512, 16, 24),
        Some(CacheConfig::mib(8, 32, 52)),
        FuLatency {
            fp: 4,
            mul: 4,
            div: 20,
        },
        skylake_ports(),
    )
}

/// Artificial 4 (Set I).
pub fn artificial4() -> MicroarchConfig {
    arch(
        "Artificial 4",
        ArchSet::I,
        false,
        4.0,
        2,
        192,
        CacheConfig::kib(64, 8, 3),
        CacheConfig::mib(1, 8, 20),
        Some(CacheConfig::mib(32, 16, 28)),
        FuLatency {
            fp: 5,
            mul: 3,
            div: 20,
        },
        broadwell_ports(),
    )
}

/// Artificial 6 (Set I).
pub fn artificial6() -> MicroarchConfig {
    arch(
        "Artificial 6",
        ArchSet::I,
        false,
        3.5,
        4,
        192,
        CacheConfig::kib(64, 8, 4),
        CacheConfig::mib(1, 8, 16),
        Some(CacheConfig::mib(8, 32, 36)),
        FuLatency {
            fp: 4,
            mul: 4,
            div: 20,
        },
        skylake_ports(),
    )
}

/// Artificial 7 (Set I).
pub fn artificial7() -> MicroarchConfig {
    arch(
        "Artificial 7",
        ArchSet::I,
        false,
        3.0,
        4,
        32,
        CacheConfig::kib(16, 8, 3),
        CacheConfig::kib(512, 16, 12),
        Some(CacheConfig::mib(32, 32, 28)),
        FuLatency {
            fp: 2,
            mul: 7,
            div: 69,
        },
        silvermont_ports(),
    )
}

/// Artificial 10 (Set I).
pub fn artificial10() -> MicroarchConfig {
    arch(
        "Artificial 10",
        ArchSet::I,
        false,
        1.5,
        8,
        32,
        CacheConfig::kib(32, 2, 2),
        CacheConfig::kib(256, 16, 24),
        Some(CacheConfig::mib(64, 32, 36)),
        FuLatency {
            fp: 5,
            mul: 4,
            div: 30,
        },
        cedarview_ports(),
    )
}

/// Artificial 11 (Set I).
pub fn artificial11() -> MicroarchConfig {
    arch(
        "Artificial 11",
        ArchSet::I,
        false,
        3.5,
        4,
        32,
        CacheConfig::kib(64, 4, 5),
        CacheConfig::kib(256, 4, 24),
        None,
        FuLatency {
            fp: 5,
            mul: 4,
            div: 30,
        },
        cedarview_ports(),
    )
}

/// Intel Ivybridge (Set II).
pub fn ivybridge() -> MicroarchConfig {
    arch(
        "Ivybridge",
        ArchSet::II,
        true,
        3.4,
        4,
        168,
        CacheConfig::kib(32, 8, 4),
        CacheConfig::kib(256, 8, 11),
        Some(CacheConfig::mib(16, 16, 28)),
        FuLatency {
            fp: 5,
            mul: 3,
            div: 20,
        },
        ivybridge_ports(),
    )
}

/// Artificial 0 (Set II).
pub fn artificial0() -> MicroarchConfig {
    arch(
        "Artificial 0",
        ArchSet::II,
        false,
        2.5,
        4,
        192,
        CacheConfig::kib(64, 2, 4),
        CacheConfig::kib(512, 4, 12),
        None,
        FuLatency {
            fp: 5,
            mul: 3,
            div: 20,
        },
        broadwell_ports(),
    )
}

/// Artificial 9 (Set II).
pub fn artificial9() -> MicroarchConfig {
    arch(
        "Artificial 9",
        ArchSet::II,
        false,
        3.5,
        8,
        192,
        CacheConfig::kib(16, 4, 5),
        CacheConfig::mib(1, 4, 20),
        Some(CacheConfig::mib(64, 16, 44)),
        FuLatency {
            fp: 4,
            mul: 3,
            div: 11,
        },
        k8_ports(),
    )
}

/// Artificial 1 (Set III).
pub fn artificial1() -> MicroarchConfig {
    arch(
        "Artificial 1",
        ArchSet::III,
        false,
        1.5,
        4,
        192,
        CacheConfig::kib(64, 8, 5),
        CacheConfig::mib(2, 8, 16),
        None,
        FuLatency {
            fp: 4,
            mul: 3,
            div: 11,
        },
        k8_ports(),
    )
}

/// Artificial 5 (Set III).
pub fn artificial5() -> MicroarchConfig {
    arch(
        "Artificial 5",
        ArchSet::III,
        false,
        3.5,
        2,
        32,
        CacheConfig::kib(32, 4, 5),
        CacheConfig::kib(256, 4, 16),
        Some(CacheConfig::mib(8, 32, 44)),
        FuLatency {
            fp: 4,
            mul: 3,
            div: 11,
        },
        k8_ports(),
    )
}

/// Artificial 8 (Set III).
pub fn artificial8() -> MicroarchConfig {
    arch(
        "Artificial 8",
        ArchSet::III,
        false,
        3.0,
        2,
        192,
        CacheConfig::kib(32, 2, 2),
        CacheConfig::mib(1, 16, 16),
        Some(CacheConfig::mib(32, 32, 52)),
        FuLatency {
            fp: 4,
            mul: 3,
            div: 11,
        },
        k8_ports(),
    )
}

/// AMD K8 (Set IV).
pub fn k8() -> MicroarchConfig {
    arch(
        "K8",
        ArchSet::IV,
        true,
        2.0,
        3,
        24,
        CacheConfig::kib(64, 2, 4),
        CacheConfig::kib(512, 16, 12),
        None,
        FuLatency {
            fp: 4,
            mul: 3,
            div: 11,
        },
        k8_ports(),
    )
}

/// AMD K10 (Set IV).
pub fn k10() -> MicroarchConfig {
    arch(
        "K10",
        ArchSet::IV,
        true,
        2.8,
        3,
        24,
        CacheConfig::kib(64, 2, 4),
        CacheConfig::kib(512, 16, 12),
        Some(CacheConfig::mib(6, 16, 40)),
        FuLatency {
            fp: 4,
            mul: 3,
            div: 11,
        },
        k8_ports(),
    )
}

/// Intel Silvermont (Set IV).
pub fn silvermont() -> MicroarchConfig {
    arch(
        "Silvermont",
        ArchSet::IV,
        true,
        2.2,
        2,
        32,
        CacheConfig::kib(32, 8, 3),
        CacheConfig::mib(1, 16, 14),
        None,
        FuLatency {
            fp: 2,
            mul: 7,
            div: 69,
        },
        silvermont_ports(),
    )
}

/// Intel Skylake (Set IV).
pub fn skylake() -> MicroarchConfig {
    arch(
        "Skylake",
        ArchSet::IV,
        true,
        4.0,
        4,
        256,
        CacheConfig::kib(32, 8, 4),
        CacheConfig::kib(256, 4, 12),
        Some(CacheConfig::mib(8, 16, 34)),
        FuLatency {
            fp: 4,
            mul: 4,
            div: 20,
        },
        skylake_ports(),
    )
}

/// All twenty designs of Table II, in table order.
pub fn all() -> Vec<MicroarchConfig> {
    vec![
        broadwell(),
        cedarview(),
        jaguar(),
        artificial2(),
        artificial3(),
        artificial4(),
        artificial6(),
        artificial7(),
        artificial10(),
        artificial11(),
        ivybridge(),
        artificial0(),
        artificial9(),
        artificial1(),
        artificial5(),
        artificial8(),
        k8(),
        k10(),
        silvermont(),
        skylake(),
    ]
}

/// Designs belonging to one experiment set.
pub fn by_set(set: ArchSet) -> Vec<MicroarchConfig> {
    all().into_iter().filter(|a| a.set == set).collect()
}

/// Looks up a design by name.
pub fn by_name(name: &str) -> Option<MicroarchConfig> {
    all().into_iter().find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_designs_partitioned() {
        let all = all();
        assert_eq!(all.len(), 20);
        assert_eq!(by_set(ArchSet::I).len(), 10);
        assert_eq!(by_set(ArchSet::II).len(), 3);
        assert_eq!(by_set(ArchSet::III).len(), 3);
        assert_eq!(by_set(ArchSet::IV).len(), 4);
        // Every design validates (constructor already checks, but be sure).
        for a in &all {
            a.validate();
        }
    }

    #[test]
    fn set_four_is_all_real() {
        assert!(by_set(ArchSet::IV).iter().all(|a| a.real));
    }

    #[test]
    fn eight_real_designs() {
        assert_eq!(all().iter().filter(|a| a.real).count(), 8);
    }

    #[test]
    fn table_two_spot_checks() {
        let sky = skylake();
        assert_eq!(sky.rob_size, 256);
        assert_eq!(sky.width, 4);
        assert_eq!(sky.l2.size, 256 * 1024);
        assert_eq!(sky.l2.assoc, 4);
        let k8 = k8();
        assert_eq!(k8.rob_size, 24);
        assert!(k8.l3.is_none());
        let a7 = artificial7();
        assert_eq!(a7.fu.div, 69);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("Ivybridge").is_some());
        assert!(by_name("Artificial 9").is_some());
        assert!(by_name("Pentium 4").is_none());
    }
}

//! # perfbug-uarch
//!
//! Trace-driven, cycle-level out-of-order core simulator with configurable
//! performance-bug injection — the gem5-O3CPU stand-in of the HPCA 2021
//! performance-bug-detection reproduction.
//!
//! The simulator models the resources the paper's experiments vary
//! (Tables II/III): pipeline width, re-order buffer, issue queue with
//! per-port functional-unit pools, physical register file, a gshare+BTB
//! branch predictor, and a three-level cache hierarchy. Performance
//! counters are sampled every time step, producing the per-probe feature
//! time series consumed by the stage-1 IPC models.
//!
//! All fourteen core bug types of §IV-C are injectable via [`BugSpec`];
//! each is a pure timing defect parameterised for arbitrary severity.
//!
//! ```
//! use perfbug_uarch::{presets, simulate};
//! use perfbug_workloads::{benchmark, WorkloadScale};
//!
//! let scale = WorkloadScale::tiny();
//! let spec = benchmark("426.mcf").expect("suite benchmark");
//! let program = spec.program(&scale);
//! let probe = &spec.probes(&scale)[0];
//! let run = simulate(&presets::skylake(), None, &probe.trace(&program), 500);
//! assert!(run.overall_ipc() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch;
pub mod bugs;
pub mod cache;
pub mod config;
pub mod counters;
pub mod presets;
pub mod sim;

pub use branch::{BranchPredictor, Prediction};
pub use bugs::BugSpec;
pub use cache::{AccessOutcome, Cache, Hierarchy, LINE_BYTES};
pub use config::{ArchSet, CacheConfig, FuLatency, MicroarchConfig};
pub use counters::{counter_names, Counter, CounterFile, Snapshot, N_COUNTERS};
pub use sim::{simulate, simulate_into, ProbeRun};

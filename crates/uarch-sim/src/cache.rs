//! Set-associative caches and the three-level data/instruction hierarchy.

use crate::config::{CacheConfig, MicroarchConfig};

/// Cache line size in bytes (fixed across the hierarchy, like gem5's
/// default).
pub const LINE_BYTES: u32 = 64;

/// One set-associative cache level with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: u32,
    ways: u32,
    /// `tags[set * ways + way]` — tag value, `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// Per-line LRU age: lower = more recently used.
    ages: Vec<u32>,
    /// Hit latency in cycles.
    latency: u32,
}

impl Cache {
    /// Builds a cache from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration yields zero sets or ways.
    pub fn new(cfg: CacheConfig) -> Self {
        let ways = cfg.assoc.max(1);
        let sets = (cfg.size / (LINE_BYTES as u64 * ways as u64)).max(1) as u32;
        Cache {
            sets,
            ways,
            tags: vec![u64::MAX; (sets * ways) as usize],
            ages: vec![0; (sets * ways) as usize],
            latency: cfg.latency,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.sets
    }

    /// Hit latency in cycles.
    pub fn latency(&self) -> u32 {
        self.latency
    }

    fn index(&self, addr: u32) -> (u32, u64) {
        let line = addr / LINE_BYTES;
        (line % self.sets, (line / self.sets) as u64)
    }

    /// Looks up `addr`; on miss the line is filled (evicting LRU). Returns
    /// whether the access hit.
    pub fn access(&mut self, addr: u32) -> bool {
        let (set, tag) = self.index(addr);
        let base = (set * self.ways) as usize;
        let slots = &mut self.tags[base..base + self.ways as usize];
        let hit_way = slots.iter().position(|&t| t == tag);
        let way = match hit_way {
            Some(w) => w,
            None => {
                // Choose invalid way first, else LRU (max age).
                let ages = &self.ages[base..base + self.ways as usize];
                let victim = slots
                    .iter()
                    .position(|&t| t == u64::MAX)
                    .unwrap_or_else(|| {
                        ages.iter()
                            .enumerate()
                            .max_by_key(|(_, &a)| a)
                            .map(|(i, _)| i)
                            .expect("nonzero ways")
                    });
                self.tags[base + victim] = tag;
                victim
            }
        };
        // Age update: touched line becomes 0, others in the set age by 1.
        for a in &mut self.ages[base..base + self.ways as usize] {
            *a = a.saturating_add(1);
        }
        self.ages[base + way] = 0;
        hit_way.is_some()
    }

    /// Whether `addr` is currently resident (no state change).
    pub fn contains(&self, addr: u32) -> bool {
        let (set, tag) = self.index(addr);
        let base = (set * self.ways) as usize;
        self.tags[base..base + self.ways as usize].contains(&tag)
    }
}

/// Counters produced by one hierarchy access.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Latency in cycles until data is available.
    pub latency: u32,
    /// Whether L1 (I or D as appropriate) hit.
    pub l1_hit: bool,
    /// Whether the L2 was accessed and hit.
    pub l2_hit: bool,
    /// Whether the L3 was accessed and hit.
    pub l3_hit: bool,
    /// Whether main memory was reached.
    pub mem: bool,
}

/// The full cache hierarchy of one core: split L1, unified L2/L3.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l3: Option<Cache>,
    mem_latency: u32,
    /// Extra cycles added to L2 hits (bug 10 hook).
    pub l2_extra_latency: u32,
}

impl Hierarchy {
    /// Builds the hierarchy for a design.
    pub fn new(cfg: &MicroarchConfig) -> Self {
        Hierarchy {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            l3: cfg.l3.map(Cache::new),
            mem_latency: cfg.mem_latency_cycles(),
            l2_extra_latency: 0,
        }
    }

    fn beyond_l1(&mut self, addr: u32, mut outcome: AccessOutcome) -> AccessOutcome {
        if self.l2.access(addr) {
            outcome.l2_hit = true;
            outcome.latency = self.l2.latency() + self.l2_extra_latency;
            return outcome;
        }
        outcome.latency = self.l2.latency() + self.l2_extra_latency;
        if let Some(l3) = &mut self.l3 {
            if l3.access(addr) {
                outcome.l3_hit = true;
                outcome.latency = l3.latency();
                return outcome;
            }
            outcome.latency = l3.latency();
        }
        outcome.mem = true;
        outcome.latency = self.mem_latency;
        outcome
    }

    /// Data-side access (load or store) returning latency and per-level
    /// hit flags.
    pub fn access_data(&mut self, addr: u32) -> AccessOutcome {
        let mut outcome = AccessOutcome::default();
        if self.l1d.access(addr) {
            outcome.l1_hit = true;
            outcome.latency = self.l1d.latency();
            return outcome;
        }
        self.beyond_l1(addr, outcome)
    }

    /// Instruction-side access returning latency and per-level hit flags.
    pub fn access_inst(&mut self, addr: u32) -> AccessOutcome {
        let mut outcome = AccessOutcome::default();
        if self.l1i.access(addr) {
            outcome.l1_hit = true;
            outcome.latency = self.l1i.latency();
            return outcome;
        }
        self.beyond_l1(addr, outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cache() -> Cache {
        // 4 sets x 2 ways x 64B = 512B.
        Cache::new(CacheConfig {
            size: 512,
            assoc: 2,
            latency: 3,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny_cache();
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1001)); // same line
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny_cache();
        // Three lines mapping to the same set (set stride = 4 lines = 256B).
        let a = 0x0000;
        let b = 0x0100;
        let d = 0x0200;
        c.access(a);
        c.access(b);
        c.access(a); // a is now MRU, b is LRU
        c.access(d); // evicts b
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
    }

    #[test]
    fn hierarchy_latency_ordering() {
        let cfg = crate::presets::skylake();
        let mut h = Hierarchy::new(&cfg);
        let first = h.access_data(0x4000_0000);
        assert!(first.mem, "cold access must reach memory");
        let second = h.access_data(0x4000_0000);
        assert!(second.l1_hit);
        assert!(second.latency < first.latency);
        assert_eq!(second.latency, cfg.l1d.latency);
    }

    #[test]
    fn l2_extra_latency_applies_on_l2_hits_only() {
        let cfg = crate::presets::skylake();
        let mut h = Hierarchy::new(&cfg);
        h.access_data(0x5000_0000); // fill everything
        let l1 = h.access_data(0x5000_0000);
        assert!(l1.l1_hit);

        let mut buggy = Hierarchy::new(&cfg);
        buggy.l2_extra_latency = 7;
        buggy.access_data(0x5000_0000);
        let l1b = buggy.access_data(0x5000_0000);
        assert_eq!(l1.latency, l1b.latency, "L1 hits unaffected by the L2 bug");
    }

    #[test]
    fn instruction_and_data_l1_are_split() {
        let cfg = crate::presets::skylake();
        let mut h = Hierarchy::new(&cfg);
        h.access_inst(0x1000_0000);
        let d = h.access_data(0x1000_0000);
        assert!(!d.l1_hit, "L1D must not hit on a line only in L1I");
        assert!(d.l2_hit, "but unified L2 holds it");
    }
}

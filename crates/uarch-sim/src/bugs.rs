//! The configurable core performance-bug types: the fourteen of §IV-C
//! plus two extension families (15: TLB/page-walk latency, 16: issue
//! replay/scheduler livelock) grown past the paper's catalogue.
//!
//! Each bug is purely a *timing* defect: the executed instruction stream is
//! unchanged, only when things happen differs. Variants are produced by
//! instantiating the parameters (`X`, `Y`, `N`, `T`, `R`) — the paper's
//! device for generating bugs of arbitrary severity.

use perfbug_workloads::{Opcode, Reg};

/// One injected core performance bug (at most one per simulation, matching
/// the paper's protocol).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BugSpec {
    /// Bug 1 — every instruction with opcode `x` is treated as
    /// serialising: it issues only once all older instructions have
    /// issued, and younger instructions stall until it has issued (the
    /// semantics of the motivating "sub marked synchronising" bug of
    /// Fig. 1).
    SerializeOpcode {
        /// The affected opcode.
        x: Opcode,
    },
    /// Bug 2 — instructions with opcode `x` issue only once they are the
    /// oldest instruction in the instruction queue (cf. Intel POPCNT
    /// erratum).
    IssueOnlyIfOldest {
        /// The affected opcode.
        x: Opcode,
    },
    /// Bug 3 — when an instruction with opcode `x` is the oldest in the
    /// queue, only that instruction may issue that cycle.
    IfOldestIssueOnlyX {
        /// The affected opcode.
        x: Opcode,
    },
    /// Bug 4 — if an `x` instruction depends on a `y` instruction, its
    /// issue is delayed by `t` cycles.
    DelayIfDependsOn {
        /// Consumer opcode.
        x: Opcode,
        /// Producer opcode.
        y: Opcode,
        /// Extra delay in cycles.
        t: u32,
    },
    /// Bug 5 — instructions dispatched while fewer than `n` instruction
    /// queue slots are free are delayed by `t` cycles.
    IqBelowDelay {
        /// Free-slot threshold.
        n: u32,
        /// Extra delay in cycles.
        t: u32,
    },
    /// Bug 6 — instructions renamed while fewer than `n` re-order buffer
    /// slots are free are delayed by `t` cycles.
    RobBelowDelay {
        /// Free-slot threshold.
        n: u32,
        /// Extra delay in cycles.
        t: u32,
    },
    /// Bug 7 — mispredicted branches incur an extra `t`-cycle redirect
    /// penalty.
    MispredictExtraDelay {
        /// Extra penalty in cycles.
        t: u32,
    },
    /// Bug 8 — after `n` stores to the same cache line, subsequent stores
    /// to that line are delayed by `t` cycles (cf. MPC7448 store-gathering
    /// erratum).
    StoresToLineDelay {
        /// Store-count threshold per line.
        n: u32,
        /// Extra delay in cycles.
        t: u32,
    },
    /// Bug 9 — after `n` writes to the same physical register, writes to
    /// it are delayed by `t` cycles; the `periodic` variant delays only
    /// every `n`-th write (cf. TI AM3517 GPMC erratum, generalised).
    WritesToRegDelay {
        /// Write-count threshold per physical register.
        n: u32,
        /// Extra delay in cycles.
        t: u32,
        /// Delay once every `n` writes instead of every write past `n`.
        periodic: bool,
    },
    /// Bug 10 — L2 hit latency increased by `t` cycles (cf. MPC7448 L2
    /// latency erratum).
    L2ExtraLatency {
        /// Extra latency in cycles.
        t: u32,
    },
    /// Bug 11 — `n` fewer physical registers are available for renaming.
    FewerPhysRegs {
        /// Registers removed from the pool.
        n: u32,
    },
    /// Bug 12 — branches whose encoding exceeds `bytes` bytes are delayed
    /// by `t` cycles at execution.
    LongBranchDelay {
        /// Encoded-size threshold in bytes.
        bytes: u8,
        /// Extra delay in cycles.
        t: u32,
    },
    /// Bug 13 — instructions with opcode `x` reading or writing
    /// architectural register `r` are delayed by `t` cycles (cf. Intel 386
    /// POPA/POPAD erratum).
    OpcodeUsesRegDelay {
        /// The affected opcode.
        x: Opcode,
        /// The architectural register.
        r: Reg,
        /// Extra delay in cycles.
        t: u32,
    },
    /// Bug 14 — the branch predictor's index function loses `lost_bits`
    /// index bits, shrinking the effective table by `2^lost_bits`.
    BtbIndexMask {
        /// Index bits masked away.
        lost_bits: u32,
    },
    /// Bug 15 — the data TLB behaves as if it held only `entries` page
    /// translations (direct-mapped); every miss pays a `t`-cycle page
    /// walk on the load/store path. Models a TLB-sizing or page-walk
    /// latency regression invisible to the retired instruction stream.
    TlbPageWalkDelay {
        /// Effective data-TLB capacity in pages.
        entries: u32,
        /// Page-walk penalty in cycles per TLB miss.
        t: u32,
    },
    /// Bug 16 — the scheduler spuriously squashes every `n`-th issue
    /// grant and replays the instruction `t` cycles later; the squashed
    /// grant still occupies its issue port for the cycle (a bounded
    /// replay-storm / scheduler-livelock pathology).
    IssueReplayEveryN {
        /// Squash every `n`-th issue grant.
        n: u32,
        /// Cycles before the squashed instruction may re-issue.
        t: u32,
    },
}

impl BugSpec {
    /// The paper's bug-type number (1–14).
    pub fn type_id(&self) -> u32 {
        match self {
            BugSpec::SerializeOpcode { .. } => 1,
            BugSpec::IssueOnlyIfOldest { .. } => 2,
            BugSpec::IfOldestIssueOnlyX { .. } => 3,
            BugSpec::DelayIfDependsOn { .. } => 4,
            BugSpec::IqBelowDelay { .. } => 5,
            BugSpec::RobBelowDelay { .. } => 6,
            BugSpec::MispredictExtraDelay { .. } => 7,
            BugSpec::StoresToLineDelay { .. } => 8,
            BugSpec::WritesToRegDelay { .. } => 9,
            BugSpec::L2ExtraLatency { .. } => 10,
            BugSpec::FewerPhysRegs { .. } => 11,
            BugSpec::LongBranchDelay { .. } => 12,
            BugSpec::OpcodeUsesRegDelay { .. } => 13,
            BugSpec::BtbIndexMask { .. } => 14,
            BugSpec::TlbPageWalkDelay { .. } => 15,
            BugSpec::IssueReplayEveryN { .. } => 16,
        }
    }

    /// Whether this bug can change a probe's dynamic instruction stream.
    ///
    /// The trace-driven simulation model makes every current family
    /// timing-only: the injected defect delays, stalls or replays work
    /// but never alters which instructions execute, their operands or
    /// their branch outcomes — exactly the property the persistent trace
    /// cache (`perfbug-core`'s `tracecache`) relies on to replay one
    /// trace across all designs and bugs. The match is exhaustive on
    /// purpose: a new family must decide here (and in the pinning
    /// regression test in `core/tests/trace_props.rs`) whether it
    /// perturbs the access stream, so it cannot silently reuse a trace
    /// it invalidates.
    pub fn perturbs_trace(&self) -> bool {
        match self {
            BugSpec::SerializeOpcode { .. }
            | BugSpec::IssueOnlyIfOldest { .. }
            | BugSpec::IfOldestIssueOnlyX { .. }
            | BugSpec::DelayIfDependsOn { .. }
            | BugSpec::IqBelowDelay { .. }
            | BugSpec::RobBelowDelay { .. }
            | BugSpec::MispredictExtraDelay { .. }
            | BugSpec::StoresToLineDelay { .. }
            | BugSpec::WritesToRegDelay { .. }
            | BugSpec::L2ExtraLatency { .. }
            | BugSpec::FewerPhysRegs { .. }
            | BugSpec::LongBranchDelay { .. }
            | BugSpec::OpcodeUsesRegDelay { .. }
            | BugSpec::BtbIndexMask { .. }
            | BugSpec::TlbPageWalkDelay { .. }
            | BugSpec::IssueReplayEveryN { .. } => false,
        }
    }

    /// Short type name matching the paper's terminology.
    pub fn type_name(&self) -> &'static str {
        match self {
            BugSpec::SerializeOpcode { .. } => "SerializeX",
            BugSpec::IssueOnlyIfOldest { .. } => "IssueXOnlyIfOldest",
            BugSpec::IfOldestIssueOnlyX { .. } => "IfOldestIssueOnlyX",
            BugSpec::DelayIfDependsOn { .. } => "IfXDependsOnYDelayT",
            BugSpec::IqBelowDelay { .. } => "IqBelowNDelayT",
            BugSpec::RobBelowDelay { .. } => "RobBelowNDelayT",
            BugSpec::MispredictExtraDelay { .. } => "MispredictDelayT",
            BugSpec::StoresToLineDelay { .. } => "NStoresToLineDelayT",
            BugSpec::WritesToRegDelay { .. } => "NWritesToRegDelayT",
            BugSpec::L2ExtraLatency { .. } => "L2LatencyPlusT",
            BugSpec::FewerPhysRegs { .. } => "FewerRegsN",
            BugSpec::LongBranchDelay { .. } => "IfBranchLongerNDelayT",
            BugSpec::OpcodeUsesRegDelay { .. } => "IfXUsesRegNDelayT",
            BugSpec::BtbIndexMask { .. } => "BpIndexMaskN",
            BugSpec::TlbPageWalkDelay { .. } => "TlbPageWalkDelayT",
            BugSpec::IssueReplayEveryN { .. } => "ReplayEveryNDelayT",
        }
    }

    /// Full human-readable variant description.
    pub fn describe(&self) -> String {
        match self {
            BugSpec::SerializeOpcode { x } => format!("Serialize {x:?}"),
            BugSpec::IssueOnlyIfOldest { x } => format!("Issue {x:?} only if oldest"),
            BugSpec::IfOldestIssueOnlyX { x } => format!("If {x:?} is oldest, issue only {x:?}"),
            BugSpec::DelayIfDependsOn { x, y, t } => {
                format!("If {x:?} depends on {y:?}, delay {t} cycles")
            }
            BugSpec::IqBelowDelay { n, t } => {
                format!("If less than {n} IQ slots free, delay {t} cycles")
            }
            BugSpec::RobBelowDelay { n, t } => {
                format!("If less than {n} ROB slots free, delay {t} cycles")
            }
            BugSpec::MispredictExtraDelay { t } => {
                format!("If mispredicted branch, delay {t} cycles")
            }
            BugSpec::StoresToLineDelay { n, t } => {
                format!("If {n} stores to cache line, delay {t} cycles")
            }
            BugSpec::WritesToRegDelay { n, t, periodic } => format!(
                "After {n} writes to the same register, delay {t} cycles{}",
                if *periodic { " (once every N)" } else { "" }
            ),
            BugSpec::L2ExtraLatency { t } => format!("L2 latency increased by {t} cycles"),
            BugSpec::FewerPhysRegs { n } => format!("Available registers reduced by {n}"),
            BugSpec::LongBranchDelay { bytes, t } => {
                format!("If branch longer than {bytes} bytes, delay {t} cycles")
            }
            BugSpec::OpcodeUsesRegDelay { x, r, t } => {
                format!("If {x:?} uses register {r}, delay {t} cycles")
            }
            BugSpec::BtbIndexMask { lost_bits } => {
                format!("Branch predictor index loses {lost_bits} bits")
            }
            BugSpec::TlbPageWalkDelay { entries, t } => {
                format!("Data TLB holds {entries} pages, misses walk {t} cycles")
            }
            BugSpec::IssueReplayEveryN { n, t } => {
                format!("Every {n}-th issue grant squashed, replay after {t} cycles")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_ids_cover_all_types() {
        let bugs = [
            BugSpec::SerializeOpcode { x: Opcode::Xor },
            BugSpec::IssueOnlyIfOldest { x: Opcode::Popcnt },
            BugSpec::IfOldestIssueOnlyX { x: Opcode::Xor },
            BugSpec::DelayIfDependsOn {
                x: Opcode::Add,
                y: Opcode::Load,
                t: 4,
            },
            BugSpec::IqBelowDelay { n: 4, t: 3 },
            BugSpec::RobBelowDelay { n: 8, t: 3 },
            BugSpec::MispredictExtraDelay { t: 10 },
            BugSpec::StoresToLineDelay { n: 4, t: 8 },
            BugSpec::WritesToRegDelay {
                n: 16,
                t: 4,
                periodic: false,
            },
            BugSpec::L2ExtraLatency { t: 6 },
            BugSpec::FewerPhysRegs { n: 32 },
            BugSpec::LongBranchDelay { bytes: 6, t: 5 },
            BugSpec::OpcodeUsesRegDelay {
                x: Opcode::Add,
                r: 0,
                t: 10,
            },
            BugSpec::BtbIndexMask { lost_bits: 8 },
            BugSpec::TlbPageWalkDelay { entries: 16, t: 30 },
            BugSpec::IssueReplayEveryN { n: 8, t: 6 },
        ];
        let ids: Vec<u32> = bugs.iter().map(BugSpec::type_id).collect();
        assert_eq!(ids, (1..=16).collect::<Vec<u32>>());
        for b in &bugs {
            assert!(!b.describe().is_empty());
            assert!(!b.type_name().is_empty());
        }
    }
}

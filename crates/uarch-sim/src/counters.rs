//! Performance counters and per-time-step sampling.
//!
//! Real cores expose hundreds of counters; the paper selects a per-probe
//! subset of them by correlation with IPC (§III-B2). This module defines
//! the raw counter file maintained by the pipeline plus a set of derived
//! ratio counters (branch fraction, miss rates, …) computed at each sample
//! boundary — the derived values model counters like "percentage of
//! correctly predicted indirect branches" the paper lists among the most
//! commonly selected.

/// Raw event counters incremented by the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
#[allow(missing_docs)] // names are self-describing; the list is long
pub enum Counter {
    Cycles,
    FetchedInsts,
    FetchStallCycles,
    IcacheAccesses,
    IcacheMisses,
    DecodedInsts,
    RenamedInsts,
    RenameStallCycles,
    RobFullStalls,
    IqFullStalls,
    LqFullStalls,
    SqFullStalls,
    PhysRegStalls,
    IssuedInsts,
    IssueIdleCycles,
    IqOccupancySum,
    RobOccupancySum,
    CommittedInsts,
    MaxCommitCycles,
    CommitIdleCycles,
    BranchInsts,
    CondBranches,
    TakenBranches,
    Mispredicts,
    IndirectBranches,
    IndirectMispredicts,
    MispredictStallCycles,
    RegReads,
    RegWrites,
    Loads,
    Stores,
    L1dAccesses,
    L1dMisses,
    L2Accesses,
    L2Misses,
    L3Accesses,
    L3Misses,
    MemAccesses,
    IntAluOps,
    IntMulOps,
    DivOps,
    FpOps,
    VecOps,
    LoadStoreStallCycles,
}

/// Number of raw counters.
pub const N_RAW: usize = 44;

const RAW_NAMES: [&str; N_RAW] = [
    "cycles",
    "fetched_insts",
    "fetch_stall_cycles",
    "icache_accesses",
    "icache_misses",
    "decoded_insts",
    "renamed_insts",
    "rename_stall_cycles",
    "rob_full_stalls",
    "iq_full_stalls",
    "lq_full_stalls",
    "sq_full_stalls",
    "phys_reg_stalls",
    "issued_insts",
    "issue_idle_cycles",
    "iq_occupancy_sum",
    "rob_occupancy_sum",
    "committed_insts",
    "max_commit_cycles",
    "commit_idle_cycles",
    "branch_insts",
    "cond_branches",
    "taken_branches",
    "mispredicts",
    "indirect_branches",
    "indirect_mispredicts",
    "mispredict_stall_cycles",
    "reg_reads",
    "reg_writes",
    "loads",
    "stores",
    "l1d_accesses",
    "l1d_misses",
    "l2_accesses",
    "l2_misses",
    "l3_accesses",
    "l3_misses",
    "mem_accesses",
    "int_alu_ops",
    "int_mul_ops",
    "div_ops",
    "fp_ops",
    "vec_ops",
    "load_store_stall_cycles",
];

const DERIVED_NAMES: [&str; 9] = [
    "branch_frac",
    "mispredict_rate",
    "indirect_correct_frac",
    "l1d_miss_rate",
    "l2_miss_rate",
    "l3_miss_rate",
    "max_commit_frac",
    "avg_rob_occupancy",
    "avg_iq_occupancy",
];

/// Total number of counter features emitted per time step (raw + derived).
pub const N_COUNTERS: usize = N_RAW + DERIVED_NAMES.len();

/// Names of all per-step counter features, raw first, derived last.
pub fn counter_names() -> Vec<&'static str> {
    RAW_NAMES
        .iter()
        .chain(DERIVED_NAMES.iter())
        .copied()
        .collect()
}

/// The raw counter file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterFile {
    vals: [u64; N_RAW],
}

impl Default for CounterFile {
    fn default() -> Self {
        CounterFile { vals: [0; N_RAW] }
    }
}

/// Raw counter totals captured at a step boundary. A plain value copy —
/// taking one allocates nothing, unlike the full [`CounterFile`] clone
/// the sampler used historically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    vals: [u64; N_RAW],
}

impl Default for Snapshot {
    fn default() -> Self {
        Snapshot { vals: [0; N_RAW] }
    }
}

impl Snapshot {
    /// Value of a counter at the captured boundary.
    #[inline]
    pub fn get(&self, c: Counter) -> u64 {
        self.vals[c as usize]
    }
}

impl CounterFile {
    /// Creates a zeroed counter file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&mut self, c: Counter) {
        self.vals[c as usize] += 1;
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        self.vals[c as usize] += n;
    }

    /// Current value of a counter.
    #[inline]
    pub fn get(&self, c: Counter) -> u64 {
        self.vals[c as usize]
    }

    /// Captures the current totals as a step-boundary [`Snapshot`].
    #[inline]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot { vals: self.vals }
    }

    /// Appends the per-step feature row — raw deltas between `self`
    /// (current totals) and `prev` (the previous step boundary) followed
    /// by derived ratios — to `out` without allocating: exactly
    /// [`N_COUNTERS`] values are pushed into the caller's buffer, which is
    /// typically the tail of a preallocated
    /// [`RowMatrix`](perfbug_workloads::RowMatrix).
    pub fn sample_row_into(&self, prev: &Snapshot, out: &mut Vec<f64>) {
        let mut delta = [0u64; N_RAW];
        out.reserve(N_COUNTERS);
        for (d, (cur, old)) in delta.iter_mut().zip(self.vals.iter().zip(&prev.vals)) {
            *d = cur - old;
            out.push(*d as f64);
        }
        let d = |c: Counter| delta[c as usize] as f64;
        let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
        let committed = d(Counter::CommittedInsts);
        let cycles = d(Counter::Cycles);
        out.push(ratio(d(Counter::BranchInsts), committed));
        out.push(ratio(d(Counter::Mispredicts), d(Counter::CondBranches)));
        out.push(ratio(
            d(Counter::IndirectBranches) - d(Counter::IndirectMispredicts),
            d(Counter::IndirectBranches),
        ));
        out.push(ratio(d(Counter::L1dMisses), d(Counter::L1dAccesses)));
        out.push(ratio(d(Counter::L2Misses), d(Counter::L2Accesses)));
        out.push(ratio(d(Counter::L3Misses), d(Counter::L3Accesses)));
        out.push(ratio(d(Counter::MaxCommitCycles), cycles));
        out.push(ratio(d(Counter::RobOccupancySum), cycles));
        out.push(ratio(d(Counter::IqOccupancySum), cycles));
    }

    /// Computes the per-step feature row against a previous counter file
    /// (compatibility wrapper over [`CounterFile::sample_row_into`]).
    pub fn sample_row(&self, prev: &CounterFile) -> Vec<f64> {
        let mut row = Vec::with_capacity(N_COUNTERS);
        self.sample_row_into(&prev.snapshot(), &mut row);
        row
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_align_with_count() {
        assert_eq!(counter_names().len(), N_COUNTERS);
        assert_eq!(RAW_NAMES.len(), N_RAW);
        // The last raw enum variant must map to the last raw slot.
        assert_eq!(Counter::LoadStoreStallCycles as usize, N_RAW - 1);
    }

    #[test]
    fn sample_row_is_delta_based() {
        let mut prev = CounterFile::new();
        prev.add(Counter::Cycles, 100);
        prev.add(Counter::CommittedInsts, 50);
        let mut cur = prev.clone();
        cur.add(Counter::Cycles, 10);
        cur.add(Counter::CommittedInsts, 20);
        cur.add(Counter::BranchInsts, 5);
        let row = cur.sample_row(&prev);
        assert_eq!(row[Counter::Cycles as usize], 10.0);
        assert_eq!(row[Counter::CommittedInsts as usize], 20.0);
        // branch_frac = 5 / 20.
        assert!((row[N_RAW] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ratios_guard_against_zero_denominators() {
        let prev = CounterFile::new();
        let cur = CounterFile::new();
        let row = cur.sample_row(&prev);
        assert!(row.iter().all(|v| v.is_finite()));
    }
}

//! Branch prediction: gshare direction predictor plus a branch target
//! buffer.
//!
//! The gshare index function is the hook point for bug 14 ("branch
//! predictor's table index function issue, reducing effective table size"):
//! an index mask can knock out high index bits, aliasing the table down to
//! a fraction of its nominal capacity.

use perfbug_workloads::{Inst, Opcode};

/// Outcome of predicting one control instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Whether direction and target were both predicted correctly.
    pub correct: bool,
    /// Whether the instruction is an indirect branch.
    pub indirect: bool,
    /// Whether the predictor predicted "taken".
    pub predicted_taken: bool,
}

/// gshare + BTB predictor.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    /// 2-bit saturating counters.
    table: Vec<u8>,
    table_mask: u32,
    /// Extra mask applied to the index (bug 14); `u32::MAX` = disabled.
    index_mask: u32,
    history: u32,
    history_mask: u32,
    /// BTB: direct-mapped `pc -> target`.
    btb_tags: Vec<u32>,
    btb_targets: Vec<u32>,
    btb_mask: u32,
}

impl BranchPredictor {
    /// Creates a predictor with `2^table_bits` counters and `btb_entries`
    /// BTB slots (rounded up to a power of two).
    pub fn new(table_bits: u32, btb_entries: u32) -> Self {
        let table_size = 1u32 << table_bits.clamp(4, 20);
        let btb_size = btb_entries.next_power_of_two().max(16);
        BranchPredictor {
            table: vec![2; table_size as usize], // weakly taken
            table_mask: table_size - 1,
            index_mask: u32::MAX,
            history: 0,
            history_mask: table_size - 1,
            btb_tags: vec![u32::MAX; btb_size as usize],
            btb_targets: vec![0; btb_size as usize],
            btb_mask: btb_size - 1,
        }
    }

    /// Restricts the usable index bits, emulating the paper's bug 14. A
    /// `lost_bits` of `b` reduces the effective table to `2^-b` of its
    /// nominal entries.
    pub fn set_index_mask_lost_bits(&mut self, lost_bits: u32) {
        let remaining = (self.table_mask.count_ones()).saturating_sub(lost_bits);
        self.index_mask = if remaining == 0 {
            0
        } else {
            (1u32 << remaining) - 1
        };
    }

    fn index(&self, pc: u32) -> usize {
        (((pc >> 2) ^ self.history) & self.table_mask & self.index_mask) as usize
    }

    fn btb_index(&self, pc: u32) -> usize {
        ((pc >> 2) & self.btb_mask) as usize
    }

    /// Predicts and immediately trains on one control instruction from the
    /// trace, returning whether the front end would have followed the
    /// correct path.
    ///
    /// # Panics
    ///
    /// Panics if the instruction is not a control instruction.
    pub fn predict_and_train(&mut self, inst: &Inst) -> Prediction {
        assert!(inst.opcode.is_control(), "predicting a non-branch");
        match inst.opcode {
            Opcode::Branch => {
                let idx = self.index(inst.pc);
                let counter = self.table[idx];
                let predicted_taken = counter >= 2;
                // Direction correct AND (if taken) target known in the BTB.
                let mut correct = predicted_taken == inst.taken;
                if correct && inst.taken {
                    correct = self.btb_lookup(inst.pc) == Some(inst.target);
                }
                self.train_direction(idx, inst.taken);
                self.push_history(inst.taken);
                if inst.taken {
                    self.btb_insert(inst.pc, inst.target);
                }
                Prediction {
                    correct,
                    indirect: false,
                    predicted_taken,
                }
            }
            Opcode::Jump => {
                // Direct unconditional: direction always known; target is
                // available from the BTB, or recovered cheaply at decode —
                // treated as correct (the front-end bubble is folded into
                // the fetch model, not a full mispredict).
                let correct = true;
                self.btb_insert(inst.pc, inst.target);
                Prediction {
                    correct,
                    indirect: false,
                    predicted_taken: true,
                }
            }
            Opcode::IndirectBranch => {
                let correct = self.btb_lookup(inst.pc) == Some(inst.target);
                self.btb_insert(inst.pc, inst.target);
                self.push_history(true);
                Prediction {
                    correct,
                    indirect: true,
                    predicted_taken: true,
                }
            }
            _ => unreachable!("is_control() checked above"),
        }
    }

    fn train_direction(&mut self, idx: usize, taken: bool) {
        let c = &mut self.table[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    fn push_history(&mut self, taken: bool) {
        self.history = ((self.history << 1) | u32::from(taken)) & self.history_mask;
    }

    fn btb_lookup(&self, pc: u32) -> Option<u32> {
        let i = self.btb_index(pc);
        (self.btb_tags[i] == pc).then(|| self.btb_targets[i])
    }

    fn btb_insert(&mut self, pc: u32, target: u32) {
        let i = self.btb_index(pc);
        self.btb_tags[i] = pc;
        self.btb_targets[i] = target;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfbug_workloads::NO_REG;

    fn branch(pc: u32, taken: bool, target: u32) -> Inst {
        Inst {
            pc,
            mem_addr: 0,
            target,
            opcode: Opcode::Branch,
            size: 2,
            src1: 0,
            src2: NO_REG,
            dst: NO_REG,
            taken,
        }
    }

    #[test]
    fn learns_a_steady_branch() {
        let mut bp = BranchPredictor::new(10, 64);
        let b = branch(0x100, true, 0x200);
        // Warm up.
        for _ in 0..8 {
            bp.predict_and_train(&b);
        }
        let p = bp.predict_and_train(&b);
        assert!(p.correct, "steady taken branch must be predicted");
    }

    #[test]
    fn alternating_pattern_learned_via_history() {
        let mut bp = BranchPredictor::new(12, 64);
        let mut correct = 0;
        for i in 0..400 {
            let b = branch(0x400, i % 2 == 0, 0x500);
            let p = bp.predict_and_train(&b);
            if i >= 200 && p.correct {
                correct += 1;
            }
        }
        assert!(
            correct > 150,
            "gshare should learn the alternation, got {correct}/200"
        );
    }

    #[test]
    fn index_mask_degrades_accuracy() {
        // Two steady branches of opposite direction, visited in an order
        // randomised by a noisy third branch. The full table separates them
        // per (pc, history); a fully masked table aliases everything onto
        // one flip-flopping counter.
        let run = |lost_bits: Option<u32>| -> usize {
            let mut bp = BranchPredictor::new(12, 4096);
            if let Some(b) = lost_bits {
                bp.set_index_mask_lost_bits(b);
            }
            let mut lcg: u32 = 12345;
            let mut correct = 0;
            for round in 0..600 {
                lcg = lcg.wrapping_mul(1664525).wrapping_add(1013904223);
                let noise = branch(0x3000, lcg & 0x8000 != 0, 0x4000);
                bp.predict_and_train(&noise);
                let taken_branch = branch(0x1000, true, 0x2000);
                let never_branch = branch(0x1040, false, 0x2040);
                let p1 = bp.predict_and_train(&taken_branch);
                let p2 = bp.predict_and_train(&never_branch);
                if round > 100 {
                    correct += usize::from(p1.correct) + usize::from(p2.correct);
                }
            }
            correct
        };
        let healthy = run(None);
        let buggy = run(Some(12)); // 2^12 entries -> a single counter
        assert!(
            buggy < healthy,
            "masked index must mispredict more (healthy {healthy}, buggy {buggy})"
        );
    }

    #[test]
    fn indirect_branch_needs_btb() {
        let mut bp = BranchPredictor::new(10, 64);
        let mut i1 = branch(0x700, true, 0x900);
        i1.opcode = Opcode::IndirectBranch;
        let p = bp.predict_and_train(&i1);
        assert!(!p.correct, "cold indirect target cannot be known");
        let p = bp.predict_and_train(&i1);
        assert!(p.correct, "repeated indirect target learned");
        // Target change is a mispredict.
        let mut i2 = i1;
        i2.target = 0xA00;
        let p = bp.predict_and_train(&i2);
        assert!(!p.correct);
    }

    #[test]
    #[should_panic(expected = "non-branch")]
    fn rejects_non_branches() {
        let mut bp = BranchPredictor::new(8, 16);
        let mut not_branch = branch(0, true, 0);
        not_branch.opcode = Opcode::Add;
        bp.predict_and_train(&not_branch);
    }
}

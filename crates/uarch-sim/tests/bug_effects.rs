//! Per-type effect tests: every one of the fourteen §IV-C bug types must
//! (a) leave the committed instruction stream intact (timing-only defect)
//! and (b) cost cycles on a workload engineered to trigger it.

use perfbug_uarch::{presets, simulate, BugSpec, MicroarchConfig, ProbeRun};
use perfbug_workloads::{Inst, Opcode, NO_REG};

/// Builds a trace that alternates a configurable opcode with dependent
/// filler so every bug type has targets.
fn mixed_trace(hot: Opcode, n: usize) -> Vec<Inst> {
    let mut trace = Vec::with_capacity(n);
    let mut addr = 0x4000_0000u32;
    let mut toggle = 0u32;
    for i in 0..n {
        let pc = 0x1000 + (i as u32 % 512) * 4;
        let inst = match i % 8 {
            0 => Inst {
                pc,
                mem_addr: 0,
                target: 0,
                opcode: hot,
                size: 3,
                src1: 9, // depends on the previous load: not instantly ready
                src2: 2,
                dst: 3,
                taken: false,
            },
            1 | 5 => Inst {
                pc,
                mem_addr: {
                    addr = 0x4000_0000 + ((addr - 0x4000_0000) + 64) % (1 << 16);
                    addr
                },
                target: 0,
                opcode: Opcode::Load,
                size: 4,
                src1: 3,
                src2: NO_REG,
                dst: 9,
                taken: false,
            },
            2 => Inst {
                pc,
                mem_addr: 0x5000_0000 + (toggle % 4) * 8, // few hot lines
                target: 0,
                opcode: Opcode::Store,
                size: 4,
                src1: 3,
                src2: 4,
                dst: NO_REG,
                taken: false,
            },
            3 => {
                toggle = toggle.wrapping_mul(1664525).wrapping_add(1013904223);
                // Mostly steady per-pc directions with occasional noise:
                // learnable by a healthy predictor, ruined by aliasing.
                let steady = (pc >> 5) & 1 == 0;
                let noisy = toggle & 0xF000 == 0; // ~6% flips
                Inst {
                    pc,
                    mem_addr: 0,
                    target: pc + 32,
                    opcode: Opcode::Branch,
                    size: 7, // long encoding for bug 12
                    src1: 3,
                    src2: NO_REG,
                    dst: NO_REG,
                    taken: steady ^ noisy,
                }
            }
            4 => Inst {
                pc,
                mem_addr: 0,
                target: 0,
                opcode: Opcode::Mul,
                size: 4,
                src1: 4,
                src2: 5,
                dst: 6,
                taken: false,
            },
            _ => Inst {
                pc,
                mem_addr: 0,
                target: 0,
                opcode: Opcode::Add,
                size: 3,
                src1: (3 + (i % 4)) as u8,
                src2: 6,
                dst: (7 + (i % 7)) as u8,
                taken: false,
            },
        };
        trace.push(inst);
    }
    trace
}

fn run(cfg: &MicroarchConfig, bug: Option<BugSpec>, trace: &[Inst]) -> ProbeRun {
    simulate(cfg, bug, trace, 500)
}

/// Asserts the bug costs cycles (or at least never gains) and commits the
/// same instruction count.
fn assert_bug_costs(bug: BugSpec, hot: Opcode, strictly: bool) {
    let trace = mixed_trace(hot, 12_000);
    let cfg = presets::skylake();
    let healthy = run(&cfg, None, &trace);
    let buggy = run(&cfg, Some(bug), &trace);
    assert_eq!(
        healthy.total_insts, buggy.total_insts,
        "{bug:?} altered the stream"
    );
    if strictly {
        assert!(
            buggy.total_cycles > healthy.total_cycles,
            "{bug:?} should cost cycles ({} !> {})",
            buggy.total_cycles,
            healthy.total_cycles
        );
    } else {
        assert!(
            buggy.total_cycles >= healthy.total_cycles,
            "{bug:?} must never gain cycles"
        );
    }
}

#[test]
fn bug01_serialize() {
    assert_bug_costs(
        BugSpec::SerializeOpcode { x: Opcode::Xor },
        Opcode::Xor,
        true,
    );
}

#[test]
fn bug02_issue_only_if_oldest() {
    assert_bug_costs(
        BugSpec::IssueOnlyIfOldest { x: Opcode::Xor },
        Opcode::Xor,
        true,
    );
}

#[test]
fn bug03_if_oldest_issue_only_x() {
    assert_bug_costs(
        BugSpec::IfOldestIssueOnlyX { x: Opcode::Xor },
        Opcode::Xor,
        true,
    );
}

#[test]
fn bug04_delay_if_depends_on() {
    // The hot instruction consumes load results (src1 = 9 = load dst);
    // making it an Add targets the (Add depends-on Load) rule.
    assert_bug_costs(
        BugSpec::DelayIfDependsOn {
            x: Opcode::Add,
            y: Opcode::Load,
            t: 20,
        },
        Opcode::Add,
        true,
    );
}

#[test]
fn bug05_iq_pressure_delay() {
    assert_bug_costs(BugSpec::IqBelowDelay { n: 60, t: 10 }, Opcode::Xor, true);
}

#[test]
fn bug06_rob_pressure_delay() {
    assert_bug_costs(BugSpec::RobBelowDelay { n: 250, t: 10 }, Opcode::Xor, true);
}

#[test]
fn bug07_mispredict_extra_penalty() {
    assert_bug_costs(BugSpec::MispredictExtraDelay { t: 25 }, Opcode::Xor, true);
}

#[test]
fn bug08_stores_to_line_delay() {
    // The trace hammers four hot store lines; evaluate on a small-queue
    // design (K8) where the delayed stores back-pressure the window.
    let trace = mixed_trace(Opcode::Xor, 12_000);
    let cfg = presets::k8();
    let healthy = run(&cfg, None, &trace);
    let buggy = run(
        &cfg,
        Some(BugSpec::StoresToLineDelay { n: 2, t: 60 }),
        &trace,
    );
    assert!(
        buggy.total_cycles > healthy.total_cycles,
        "store-gathering bug must cost cycles ({} !> {})",
        buggy.total_cycles,
        healthy.total_cycles
    );
}

#[test]
fn bug09_writes_to_reg_delay() {
    assert_bug_costs(
        BugSpec::WritesToRegDelay {
            n: 4,
            t: 12,
            periodic: false,
        },
        Opcode::Xor,
        true,
    );
    // The periodic variant fires less often but still never helps.
    assert_bug_costs(
        BugSpec::WritesToRegDelay {
            n: 8,
            t: 12,
            periodic: true,
        },
        Opcode::Xor,
        false,
    );
}

#[test]
fn bug10_l2_extra_latency() {
    // The 64 KiB load stream misses L1 (32 KiB) but lives in L2 after the
    // first pass, so taxing L2 hits must cost cycles.
    assert_bug_costs(BugSpec::L2ExtraLatency { t: 30 }, Opcode::Xor, true);
}

#[test]
fn bug11_fewer_phys_regs() {
    assert_bug_costs(BugSpec::FewerPhysRegs { n: 280 }, Opcode::Xor, true);
}

#[test]
fn bug12_long_branch_delay() {
    // Trace branches use 7-byte encodings.
    assert_bug_costs(
        BugSpec::LongBranchDelay { bytes: 5, t: 15 },
        Opcode::Xor,
        true,
    );
}

#[test]
fn bug13_opcode_uses_reg_delay() {
    // Hot Xor reads architectural registers 9 and 2.
    assert_bug_costs(
        BugSpec::OpcodeUsesRegDelay {
            x: Opcode::Xor,
            r: 2,
            t: 25,
        },
        Opcode::Xor,
        true,
    );
}

#[test]
fn bug14_predictor_index_mask() {
    assert_bug_costs(BugSpec::BtbIndexMask { lost_bits: 12 }, Opcode::Xor, true);
}

#[test]
fn bugs_affect_counters_not_composition() {
    // A timing bug must not change the committed opcode mix: branch and
    // load counts are identical between healthy and buggy runs.
    let trace = mixed_trace(Opcode::Xor, 8_000);
    let cfg = presets::skylake();
    let names = perfbug_uarch::counter_names();
    let col = |n: &str| names.iter().position(|x| *x == n).expect("counter");
    let healthy = run(&cfg, None, &trace);
    let buggy = run(
        &cfg,
        Some(BugSpec::SerializeOpcode { x: Opcode::Xor }),
        &trace,
    );
    let total = |r: &ProbeRun, c: usize| r.counter_rows.iter().map(|row| row[c]).sum::<f64>();
    // Totals over full runs (sampling may drop a partial step; compare
    // with tolerance of one step's worth).
    let h_loads = total(&healthy, col("loads"));
    let b_loads = total(&buggy, col("loads"));
    assert!(
        (h_loads - b_loads).abs() <= 400.0,
        "load counts diverged: {h_loads} vs {b_loads}"
    );
}

#[test]
fn severity_scales_with_parameter() {
    // Raising T must not reduce the cost (monotone severity knob).
    let trace = mixed_trace(Opcode::Xor, 10_000);
    let cfg = presets::skylake();
    let mut last = run(&cfg, None, &trace).total_cycles;
    for t in [5u32, 20, 60] {
        let cycles = run(&cfg, Some(BugSpec::MispredictExtraDelay { t }), &trace).total_cycles;
        assert!(cycles >= last, "t={t} should cost at least as much");
        last = cycles;
    }
}

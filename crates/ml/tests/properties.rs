//! Property-based tests for the ML foundations.

use perfbug_ml::metrics::{mae, mse, pearson, roc_auc, roc_curve};
use perfbug_ml::{Dataset, Gbt, GbtParams, Lasso, LassoParams, Matrix, Regressor, StandardScaler};
use proptest::prelude::*;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3..1e3f64, len)
}

proptest! {
    #[test]
    fn pearson_is_bounded(a in finite_vec(20), b in finite_vec(20)) {
        let r = pearson(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn pearson_is_symmetric(a in finite_vec(12), b in finite_vec(12)) {
        prop_assert!((pearson(&a, &b) - pearson(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn pearson_scale_invariant(a in finite_vec(12), b in finite_vec(12), k in 0.1..10.0f64) {
        let scaled: Vec<f64> = b.iter().map(|v| v * k + 3.0).collect();
        prop_assert!((pearson(&a, &b) - pearson(&a, &scaled)).abs() < 1e-6);
    }

    #[test]
    fn mse_mae_nonnegative_and_zero_on_self(a in finite_vec(10)) {
        prop_assert!(mse(&a, &a).abs() < 1e-12);
        prop_assert!(mae(&a, &a).abs() < 1e-12);
        let shifted: Vec<f64> = a.iter().map(|v| v + 1.0).collect();
        prop_assert!(mse(&a, &shifted) > 0.0);
        prop_assert!(mae(&a, &shifted) > 0.0);
    }

    #[test]
    fn auc_within_bounds(scores in finite_vec(16), flips in prop::collection::vec(any::<bool>(), 16)) {
        let auc = roc_auc(&scores, &flips);
        prop_assert!((0.0..=1.0).contains(&auc));
    }

    #[test]
    fn auc_complement_symmetry(scores in finite_vec(16), flips in prop::collection::vec(any::<bool>(), 16)) {
        // Negating scores must mirror the AUC around 0.5.
        let pos = flips.iter().filter(|&&f| f).count();
        prop_assume!(pos > 0 && pos < flips.len());
        let neg: Vec<f64> = scores.iter().map(|s| -s).collect();
        let a = roc_auc(&scores, &flips);
        let b = roc_auc(&neg, &flips);
        prop_assert!((a + b - 1.0).abs() < 1e-9);
    }

    #[test]
    fn roc_curve_is_monotone(scores in finite_vec(16), flips in prop::collection::vec(any::<bool>(), 16)) {
        let curve = roc_curve(&scores, &flips);
        for w in curve.windows(2) {
            prop_assert!(w[1].fpr >= w[0].fpr - 1e-12);
            prop_assert!(w[1].tpr >= w[0].tpr - 1e-12);
        }
    }

    #[test]
    fn scaler_rows_have_unit_stats(rows in prop::collection::vec(finite_vec(4), 3..20)) {
        let m = Matrix::from_rows(&rows).unwrap();
        let scaler = StandardScaler::fit(&m);
        let t = scaler.transform(&m);
        for c in 0..t.cols() {
            let col = t.column(c);
            let mean = col.iter().sum::<f64>() / col.len() as f64;
            prop_assert!(mean.abs() < 1e-6, "column {c} mean {mean}");
        }
    }

    #[test]
    fn gbt_training_reduces_loss(seed in 0u64..1000) {
        // Random-but-learnable target: piecewise function of one feature.
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![((i as u64 * 37 + seed) % 101) as f64 / 10.0])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| if r[0] > 5.0 { 2.0 } else { -1.0 }).collect();
        let data = Dataset::from_rows(&rows, &y).unwrap();
        let mut model = Gbt::new(GbtParams { n_trees: 30, ..GbtParams::default() });
        model.fit(&data, None);
        let base = y.iter().sum::<f64>() / y.len() as f64;
        let base_mse = mse(&vec![base; y.len()], &y);
        let model_mse = mse(&model.predict(data.x()), &y);
        prop_assert!(model_mse <= base_mse + 1e-9);
    }

    #[test]
    fn lasso_never_worse_than_mean_on_train(seed in 0u64..200) {
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![((i as u64 * 13 + seed) % 17) as f64, ((i as u64 * 7) % 5) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * 0.5 - r[1]).collect();
        let data = Dataset::from_rows(&rows, &y).unwrap();
        let mut model = Lasso::new(LassoParams { alpha: 0.01, ..LassoParams::default() });
        model.fit(&data, None);
        let base = y.iter().sum::<f64>() / y.len() as f64;
        let base_mse = mse(&vec![base; y.len()], &y);
        let model_mse = mse(&model.predict(data.x()), &y);
        prop_assert!(model_mse <= base_mse + 1e-9);
    }

    #[test]
    fn dataset_split_partitions(frac in 0.1..0.9f64, seed in any::<u64>()) {
        let rows: Vec<Vec<f64>> = (0..25).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..25).map(|i| i as f64).collect();
        let d = Dataset::from_rows(&rows, &y).unwrap();
        let (train, val) = d.split(frac, seed);
        prop_assert_eq!(train.len() + val.len(), d.len());
        // Every original target appears exactly once across the split.
        let mut all: Vec<f64> = train.y().iter().chain(val.y()).copied().collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect: Vec<f64> = (0..25).map(|i| i as f64).collect();
        prop_assert_eq!(all, expect);
    }
}

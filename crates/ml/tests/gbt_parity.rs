//! Exact-vs-histogram GBT parity suite.
//!
//! The histogram trainer quantises features before split finding, so it is
//! an *approximation* of the exact greedy splitter — except where binning
//! is lossless (at most `max_bins` distinct values per feature), where the
//! candidate split sets coincide and the two strategies must agree. These
//! properties pin that contract:
//!
//! * all-distinct feature values (one bin per row at `max_bins = 255`):
//!   predictions bit-identical across all boosting rounds;
//! * ≤ 255 distinct values with exactly representable gradient arithmetic:
//!   bit-identical split thresholds at the bin boundaries;
//! * random repeated-value datasets: predictions within tolerance;
//! * per-round training loss non-increasing (squared loss is minimised
//!   exactly by each leaf, shrinkage only scales the step);
//! * constant columns are never selected for a split by either strategy
//!   (the binning analogue of `StandardScaler`'s constant-column mask).

use perfbug_ml::metrics::mse;
use perfbug_ml::{Dataset, Gbt, GbtParams, Regressor, SplitStrategy};
use proptest::prelude::*;

fn fit(data: &Dataset, n_trees: usize, strategy: SplitStrategy) -> Gbt {
    let mut m = Gbt::new(GbtParams {
        n_trees,
        split_strategy: strategy,
        ..GbtParams::default()
    });
    m.fit(data, None);
    m
}

/// A learnable nonlinear target over arbitrary feature rows.
fn target(row: &[f64]) -> f64 {
    let s: f64 = row.iter().sum();
    (s * 0.37).sin() + 0.25 * s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn bit_identical_on_all_distinct_values(
        seed in 0u64..1000,
        n in 30usize..150,
        n_features in 1usize..5,
        n_trees in 1usize..15,
    ) {
        // Every feature value is unique (the irrational stride never
        // repeats over an integer index), so every row gets its own bin at
        // max_bins = 255 (n < 255): binning is lossless, candidate
        // partitions and summation orders coincide, and both strategies
        // grow the same row partitions with the same leaf weights round
        // after round — training-set predictions must match bit for bit.
        // (Threshold *values* may differ inside value gaps of child
        // nodes: exact uses subset-adjacent midpoints, histogram the
        // first bin boundary realising the same partition.)
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..n_features)
                    .map(|f| ((i * (f + 2) + seed as usize) as f64 * 0.618_033_988_749).fract() + i as f64 * 1e-3)
                    .collect()
            })
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| target(r)).collect();
        let data = Dataset::from_rows(&rows, &y).unwrap();
        let exact = fit(&data, n_trees, SplitStrategy::Exact);
        let hist = fit(&data, n_trees, SplitStrategy::Histogram { max_bins: 255 });
        prop_assert_eq!(
            exact.split_thresholds().len(),
            hist.split_thresholds().len()
        );
        prop_assert_eq!(exact.predict(data.x()), hist.predict(data.x()));
    }

    #[test]
    fn close_to_exact_on_repeated_values(
        seed in 0u64..1000,
        n in 40usize..160,
        levels in 3usize..20,
    ) {
        // Feature values drawn from a small grid (heavy repetition), so
        // bins hold many rows. Binning is still lossless (levels < 255),
        // but per-bin summation order differs from the exact splitter's
        // row-by-row order; models must agree to floating-point noise.
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let a = ((i * 7 + seed as usize) % levels) as f64;
                let b = ((i * 13 + seed as usize / 3) % levels) as f64 * 0.5;
                vec![a, b]
            })
            .collect();
        let y: Vec<f64> = rows.iter().enumerate().map(|(i, r)| target(r) + (i as f64 * 0.11).sin() * 0.1).collect();
        let data = Dataset::from_rows(&rows, &y).unwrap();
        let exact = fit(&data, 10, SplitStrategy::Exact);
        let hist = fit(&data, 10, SplitStrategy::Histogram { max_bins: 255 });
        let pe = exact.predict(data.x());
        let ph = hist.predict(data.x());
        for (a, b) in pe.iter().zip(&ph) {
            prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn per_round_training_loss_non_increasing(
        seed in 0u64..1000,
        n in 30usize..100,
        max_bins in 4u16..64,
    ) {
        // Boosting the squared loss with leaf weights -G/(H+λ) and
        // shrinkage in (0, 2) can never increase training loss, for any
        // bin resolution. Models with k trees share their first k trees
        // with larger models (greedy growth), so refitting per k walks
        // the per-round losses.
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![((i as u64 * 37 + seed) % 101) as f64 / 10.0, (i % 9) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| target(r)).collect();
        let data = Dataset::from_rows(&rows, &y).unwrap();
        let mut prev = f64::INFINITY;
        for k in 1..=8 {
            let m = fit(&data, k, SplitStrategy::Histogram { max_bins });
            let loss = mse(&m.predict(data.x()), &y);
            prop_assert!(
                loss <= prev + 1e-12,
                "round {k}: loss {loss} > previous {prev}"
            );
            prev = loss;
        }
    }

    #[test]
    fn constant_columns_never_split(
        seed in 0u64..1000,
        n in 20usize..80,
        constant in -1e3..1e3f64,
    ) {
        // Regression guard for the binning analogue of StandardScaler's
        // constant-column mask: one distinct value -> zero cut points ->
        // no split may ever select the feature, under either strategy.
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![constant, ((i as u64 * 29 + seed) % 37) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| target(r)).collect();
        let data = Dataset::from_rows(&rows, &y).unwrap();
        for strategy in [SplitStrategy::Exact, SplitStrategy::Histogram { max_bins: 255 }] {
            let m = fit(&data, 8, strategy);
            prop_assert!(
                m.split_thresholds().iter().all(|&(f, _)| f != 0),
                "{strategy:?} split on the constant column"
            );
        }
    }
}

/// `max_bins = 255` against exact on ≤ 255 distinct values: bit-identical
/// thresholds at the bin boundaries. 256 rows over 32 distinct dyadic
/// values with dyadic targets keep every gradient sum exactly
/// representable, so the two strategies see *equal* gains — not merely
/// close ones — and must pick the same cut, whose threshold is the same
/// midpoint under both candidate formulas.
#[test]
fn max_bins_255_thresholds_bit_identical_on_few_distinct() {
    let n = 256;
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| vec![(i % 32) as f64, ((i / 32) % 8) as f64 * 0.25])
        .collect();
    let y: Vec<f64> = (0..n)
        .map(|i| ((i % 32) / 8) as f64 - ((i / 32) % 4) as f64 * 0.5)
        .collect();
    let data = Dataset::from_rows(&rows, &y).unwrap();
    let params = |s| GbtParams {
        n_trees: 1,
        max_depth: 6,
        split_strategy: s,
        ..GbtParams::default()
    };
    let mut exact = Gbt::new(params(SplitStrategy::Exact));
    let mut hist = Gbt::new(params(SplitStrategy::Histogram { max_bins: 255 }));
    exact.fit(&data, None);
    hist.fit(&data, None);
    let te = exact.split_thresholds();
    assert!(!te.is_empty(), "test data must produce splits");
    assert_eq!(te, hist.split_thresholds());
    assert_eq!(exact.predict(data.x()), hist.predict(data.x()));
}

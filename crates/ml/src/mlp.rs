//! Multi-layer perceptron regressor (ReLU hidden layers, linear output).
//!
//! Training is fully batched: each mini-batch runs one blocked
//! `X · Wᵀ` matmul per layer forward ([`crate::matmul_transb`]) and two
//! matmuls per layer backward (`delta · W` for the downstream gradient,
//! `deltaᵀ · acts` for the weight gradient), all through reusable scratch
//! buffers — no per-sample allocation or scalar triple loop remains on
//! the training path.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

use crate::adam::Adam;
use crate::dataset::Dataset;
use crate::matrix::{gemv_acc, matmul, matmul_ta, matmul_transb};
use crate::metrics::mse;
use crate::scaler::StandardScaler;
use crate::Regressor;

/// Hyper-parameters for [`Mlp`].
#[derive(Debug, Clone, PartialEq)]
pub struct MlpParams {
    /// Sizes of the hidden layers (the paper names models
    /// `<layers>-MLP-<neurons>`, e.g. `1-MLP-500` is `hidden: vec![500]`).
    pub hidden: Vec<usize>,
    /// Learning rate for Adam.
    pub lr: f64,
    /// Global-norm gradient clip (the paper uses 0.01).
    pub clip_norm: Option<f64>,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Hard cap on training epochs.
    pub max_epochs: usize,
    /// Early-stopping patience: stop after this many epochs without
    /// validation improvement (the paper uses 100).
    pub patience: usize,
    /// Seed for weight initialisation and shuffling.
    pub seed: u64,
}

impl Default for MlpParams {
    fn default() -> Self {
        MlpParams {
            hidden: vec![64],
            lr: 1e-3,
            clip_norm: Some(0.01),
            batch_size: 32,
            max_epochs: 400,
            patience: 100,
            seed: 0,
        }
    }
}

/// Fully connected feed-forward regressor.
///
/// Features are standardised internally. Training uses MSE loss, the
/// [`Adam`] optimiser with gradient clipping, and early stopping on the
/// validation dataset when one is supplied (matching §V-A of the paper).
#[derive(Debug, Clone)]
pub struct Mlp {
    params: MlpParams,
    /// Layer sizes including input and output: `[in, h1, ..., 1]`.
    sizes: Vec<usize>,
    /// Flat parameter buffer: per layer, weights (out*in) then biases (out).
    theta: Vec<f64>,
    scaler: Option<StandardScaler>,
}

impl Mlp {
    /// Creates an untrained MLP.
    pub fn new(params: MlpParams) -> Self {
        Mlp {
            params,
            sizes: Vec::new(),
            theta: Vec::new(),
            scaler: None,
        }
    }

    /// Total number of trainable parameters (0 before fit).
    pub fn n_params(&self) -> usize {
        self.theta.len()
    }

    fn layer_offsets(sizes: &[usize]) -> Vec<(usize, usize, usize)> {
        // (weight_offset, bias_offset, next_offset) per layer
        let mut offs = Vec::new();
        let mut cur = 0;
        for l in 0..sizes.len() - 1 {
            let w = sizes[l + 1] * sizes[l];
            let b = sizes[l + 1];
            offs.push((cur, cur + w, cur + w + b));
            cur += w + b;
        }
        offs
    }

    fn init(&mut self, n_features: usize, rng: &mut impl Rng) {
        let mut sizes = vec![n_features];
        sizes.extend_from_slice(&self.params.hidden);
        sizes.push(1);
        let offs = Self::layer_offsets(&sizes);
        let total = offs.last().map_or(0, |o| o.2);
        let mut theta = vec![0.0; total];
        for (l, &(w_off, b_off, _)) in offs.iter().enumerate() {
            // He initialisation for ReLU layers.
            let scale = (2.0 / sizes[l] as f64).sqrt();
            for w in &mut theta[w_off..b_off] {
                *w = (rng.gen::<f64>() * 2.0 - 1.0) * scale;
            }
        }
        self.sizes = sizes;
        self.theta = theta;
    }

    /// Batched forward pass over `batch` rows already gathered into
    /// `scratch.acts[0]`: every layer is one blocked `X · Wᵀ` matmul plus
    /// a bias/ReLU sweep, writing into the scratch's per-layer activation
    /// buffers.
    fn forward_batch(&self, batch: usize, scratch: &mut MlpScratch) {
        let offs = Self::layer_offsets(&self.sizes);
        let n_layers = self.sizes.len() - 1;
        for (l, &(w_off, b_off, _)) in offs.iter().enumerate() {
            let n_in = self.sizes[l];
            let n_out = self.sizes[l + 1];
            let (prev_acts, rest) = scratch.acts.split_at_mut(l + 1);
            let prev = &prev_acts[l][..batch * n_in];
            let out = &mut rest[0];
            out.resize(batch * n_out, 0.0);
            matmul_transb(
                prev,
                &self.theta[w_off..w_off + n_out * n_in],
                batch,
                n_in,
                n_out,
                &mut out[..batch * n_out],
            );
            let bias = &self.theta[b_off..b_off + n_out];
            let relu = l + 1 < n_layers;
            for row in out[..batch * n_out].chunks_exact_mut(n_out) {
                for (v, b) in row.iter_mut().zip(bias) {
                    *v += b;
                    if relu && *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
        }
    }

    /// Batched backward pass over the activations left in `scratch` by
    /// [`Mlp::forward_batch`]; accumulates parameter gradients into `grad`
    /// and returns the batch's summed squared error.
    fn backward_batch(
        &self,
        batch: usize,
        targets: &[f64],
        scratch: &mut MlpScratch,
        grad: &mut [f64],
    ) -> f64 {
        let offs = Self::layer_offsets(&self.sizes);
        let n_layers = self.sizes.len() - 1;
        // Output delta: d(err^2)/d out = 2 * (out - y).
        let out_acts = &scratch.acts[n_layers][..batch];
        let mut sq_err = 0.0;
        let out_delta = &mut scratch.deltas[n_layers];
        out_delta.resize(batch, 0.0);
        for s in 0..batch {
            let err = out_acts[s] - targets[s];
            sq_err += err * err;
            out_delta[s] = 2.0 * err;
        }
        for l in (0..n_layers).rev() {
            let (w_off, b_off, _) = offs[l];
            let n_in = self.sizes[l];
            let n_out = self.sizes[l + 1];
            let (deltas_lo, deltas_hi) = scratch.deltas.split_at_mut(l + 1);
            let delta = &deltas_hi[0][..batch * n_out];
            let prev = &scratch.acts[l][..batch * n_in];
            // Bias gradient: per-output column sums of the delta matrix.
            for row in delta.chunks_exact(n_out) {
                for (g, d) in grad[b_off..b_off + n_out].iter_mut().zip(row) {
                    *g += d;
                }
            }
            // Weight gradient: dW += deltaᵀ · prev (blocked kernel).
            matmul_ta(
                delta,
                prev,
                batch,
                n_out,
                n_in,
                &mut grad[w_off..w_off + n_out * n_in],
            );
            if l > 0 {
                // Downstream delta: (delta · W) gated by ReLU'(prev).
                let next_delta = &mut deltas_lo[l];
                next_delta.resize(batch * n_in, 0.0);
                matmul(
                    delta,
                    &self.theta[w_off..w_off + n_out * n_in],
                    batch,
                    n_out,
                    n_in,
                    &mut next_delta[..batch * n_in],
                );
                for (nd, a) in next_delta[..batch * n_in].iter_mut().zip(prev) {
                    if *a <= 0.0 {
                        *nd = 0.0;
                    }
                }
            }
        }
        sq_err
    }

    /// Gathers dataset rows `idx` into `scratch.acts[0]` and the matching
    /// targets into `scratch.targets`.
    fn gather_batch(&self, data: &Dataset, idx: &[usize], scratch: &mut MlpScratch) {
        let n_in = self.sizes[0];
        let input = &mut scratch.acts[0];
        input.clear();
        input.reserve(idx.len() * n_in);
        scratch.targets.clear();
        for &i in idx {
            let (row, y) = data.sample(i);
            input.extend_from_slice(row);
            scratch.targets.push(y);
        }
    }

    fn eval(&self, data: &Dataset, scratch: &mut MlpScratch) -> f64 {
        let mut preds = Vec::with_capacity(data.len());
        let all: Vec<usize> = (0..data.len()).collect();
        for chunk in all.chunks(EVAL_CHUNK) {
            self.gather_batch(data, chunk, scratch);
            self.forward_batch(chunk.len(), scratch);
            preds.extend_from_slice(&self.acts_output(scratch)[..chunk.len()]);
        }
        mse(&preds, data.y())
    }

    fn acts_output<'s>(&self, scratch: &'s MlpScratch) -> &'s [f64] {
        &scratch.acts[self.sizes.len() - 1]
    }

    /// Single-row forward used by inference: one [`gemv_acc`] per layer
    /// over a pair of ping-pong buffers.
    fn forward_row(&self, x: &[f64]) -> f64 {
        let offs = Self::layer_offsets(&self.sizes);
        let n_layers = self.sizes.len() - 1;
        let mut cur = x.to_vec();
        let mut next = Vec::new();
        for (l, &(w_off, b_off, _)) in offs.iter().enumerate() {
            let n_in = self.sizes[l];
            let n_out = self.sizes[l + 1];
            next.clear();
            next.extend_from_slice(&self.theta[b_off..b_off + n_out]);
            gemv_acc(
                &self.theta[w_off..w_off + n_out * n_in],
                n_out,
                n_in,
                &cur,
                &mut next,
            );
            if l + 1 < n_layers {
                for v in &mut next {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }
        cur[0]
    }
}

/// Number of rows evaluated per forward chunk when scoring a dataset.
const EVAL_CHUNK: usize = 256;

/// Reusable training buffers: per-layer activation and delta matrices
/// (batch-major) plus the gathered target column. Allocated once per fit
/// and recycled across every mini-batch and epoch.
#[derive(Debug, Default)]
struct MlpScratch {
    acts: Vec<Vec<f64>>,
    deltas: Vec<Vec<f64>>,
    targets: Vec<f64>,
}

impl MlpScratch {
    fn for_sizes(sizes: &[usize]) -> Self {
        MlpScratch {
            acts: sizes.iter().map(|_| Vec::new()).collect(),
            deltas: sizes.iter().map(|_| Vec::new()).collect(),
            targets: Vec::new(),
        }
    }
}

impl Regressor for Mlp {
    fn fit(&mut self, train: &Dataset, val: Option<&Dataset>) {
        assert!(!train.is_empty(), "cannot fit MLP on an empty dataset");
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.params.seed);
        let scaler = StandardScaler::fit(train.x());
        let x = scaler.transform(train.x());
        let train_scaled = Dataset::new(x, train.y().to_vec()).expect("shape preserved");
        let val_scaled = val.map(|v| {
            Dataset::new(scaler.transform(v.x()), v.y().to_vec()).expect("shape preserved")
        });
        self.init(train.n_features(), &mut rng);
        self.scaler = None; // forward() during training uses pre-scaled data

        let mut adam = Adam::new(self.theta.len(), self.params.lr, self.params.clip_norm);
        let mut order: Vec<usize> = (0..train_scaled.len()).collect();
        let mut best_theta = self.theta.clone();
        let mut best_loss = f64::INFINITY;
        let mut stale = 0usize;
        let mut grad = vec![0.0; self.theta.len()];
        let mut scratch = MlpScratch::for_sizes(&self.sizes);
        for _epoch in 0..self.params.max_epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(self.params.batch_size.max(1)) {
                grad.iter_mut().for_each(|g| *g = 0.0);
                self.gather_batch(&train_scaled, chunk, &mut scratch);
                self.forward_batch(chunk.len(), &mut scratch);
                let targets = std::mem::take(&mut scratch.targets);
                self.backward_batch(chunk.len(), &targets, &mut scratch, &mut grad);
                scratch.targets = targets;
                let inv = 1.0 / chunk.len() as f64;
                grad.iter_mut().for_each(|g| *g *= inv);
                adam.step(&mut self.theta, &grad);
            }
            let monitored = val_scaled.as_ref().unwrap_or(&train_scaled);
            let loss = self.eval(monitored, &mut scratch);
            if loss + 1e-12 < best_loss {
                best_loss = loss;
                best_theta.copy_from_slice(&self.theta);
                stale = 0;
            } else {
                stale += 1;
                if stale >= self.params.patience {
                    break;
                }
            }
        }
        self.theta = best_theta;
        self.scaler = Some(scaler);
    }

    fn predict_row(&self, x: &[f64]) -> f64 {
        let scaler = self
            .scaler
            .as_ref()
            .expect("Mlp::predict_row called before fit");
        let z = scaler.transform_row(x);
        self.forward_row(&z)
    }

    /// Batched inference: scale the rows into one flat buffer and run the
    /// same chunked `X · Wᵀ` matmul forward pass training uses, instead of
    /// one `gemv` per row.
    fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        let scaler = self
            .scaler
            .as_ref()
            .expect("Mlp::predict_batch called before fit");
        let n_in = self.sizes[0];
        let mut scratch = MlpScratch::for_sizes(&self.sizes);
        let mut preds = Vec::with_capacity(rows.len());
        for chunk in rows.chunks(EVAL_CHUNK) {
            let input = &mut scratch.acts[0];
            input.clear();
            input.reserve(chunk.len() * n_in);
            for r in chunk {
                let start = input.len();
                input.extend_from_slice(r);
                scaler.transform_row_in_place(&mut input[start..]);
            }
            self.forward_batch(chunk.len(), &mut scratch);
            preds.extend_from_slice(&self.acts_output(&scratch)[..chunk.len()]);
        }
        preds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nonlinear_data(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64 * 4.0 - 2.0;
                vec![t, t * t]
            })
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| r[1] * 0.5 + r[0]).collect();
        Dataset::from_rows(&rows, &y).unwrap()
    }

    #[test]
    fn learns_smooth_function() {
        let data = nonlinear_data(120);
        let mut m = Mlp::new(MlpParams {
            hidden: vec![32],
            max_epochs: 300,
            clip_norm: None,
            lr: 3e-3,
            ..MlpParams::default()
        });
        m.fit(&data, None);
        let preds = m.predict(data.x());
        let err = mse(&preds, data.y());
        assert!(err < 0.1, "mse {err}");
    }

    #[test]
    fn early_stopping_restores_best_weights() {
        let data = nonlinear_data(60);
        let (train, val) = data.split(0.25, 3);
        let mut m = Mlp::new(MlpParams {
            hidden: vec![16],
            max_epochs: 150,
            patience: 10,
            clip_norm: None,
            lr: 3e-3,
            ..MlpParams::default()
        });
        m.fit(&train, Some(&val));
        // Validation error should be finite and reasonable after restore.
        let preds = m.predict(val.x());
        assert!(mse(&preds, val.y()).is_finite());
    }

    #[test]
    fn batched_inference_matches_scalar_path() {
        let data = nonlinear_data(80);
        let mut m = Mlp::new(MlpParams {
            hidden: vec![24, 8],
            max_epochs: 60,
            ..MlpParams::default()
        });
        m.fit(&data, None);
        // More rows than one EVAL_CHUNK so the chunking seam is exercised.
        let rows: Vec<Vec<f64>> = (0..(EVAL_CHUNK + 37))
            .map(|i| {
                let t = i as f64 * 0.013 - 1.7;
                vec![t, t * t]
            })
            .collect();
        let batched = m.predict_batch(&rows);
        let scalar: Vec<f64> = rows.iter().map(|r| m.predict_row(r)).collect();
        assert_eq!(batched, scalar);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = nonlinear_data(60);
        let params = MlpParams {
            hidden: vec![8],
            max_epochs: 30,
            ..MlpParams::default()
        };
        let mut a = Mlp::new(params.clone());
        let mut b = Mlp::new(params);
        a.fit(&data, None);
        b.fit(&data, None);
        assert_eq!(
            a.predict_row(data.sample(0).0),
            b.predict_row(data.sample(0).0)
        );
    }

    #[test]
    fn param_count_matches_architecture() {
        let data = nonlinear_data(20);
        let mut m = Mlp::new(MlpParams {
            hidden: vec![5],
            max_epochs: 1,
            ..MlpParams::default()
        });
        m.fit(&data, None);
        // 2 inputs -> 5 hidden -> 1 output: (2*5 + 5) + (5*1 + 1) = 21.
        assert_eq!(m.n_params(), 21);
    }
}

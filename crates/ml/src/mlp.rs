//! Multi-layer perceptron regressor (ReLU hidden layers, linear output).

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

use crate::adam::Adam;
use crate::dataset::Dataset;
use crate::metrics::mse;
use crate::scaler::StandardScaler;
use crate::Regressor;

/// Hyper-parameters for [`Mlp`].
#[derive(Debug, Clone, PartialEq)]
pub struct MlpParams {
    /// Sizes of the hidden layers (the paper names models
    /// `<layers>-MLP-<neurons>`, e.g. `1-MLP-500` is `hidden: vec![500]`).
    pub hidden: Vec<usize>,
    /// Learning rate for Adam.
    pub lr: f64,
    /// Global-norm gradient clip (the paper uses 0.01).
    pub clip_norm: Option<f64>,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Hard cap on training epochs.
    pub max_epochs: usize,
    /// Early-stopping patience: stop after this many epochs without
    /// validation improvement (the paper uses 100).
    pub patience: usize,
    /// Seed for weight initialisation and shuffling.
    pub seed: u64,
}

impl Default for MlpParams {
    fn default() -> Self {
        MlpParams {
            hidden: vec![64],
            lr: 1e-3,
            clip_norm: Some(0.01),
            batch_size: 32,
            max_epochs: 400,
            patience: 100,
            seed: 0,
        }
    }
}

/// Fully connected feed-forward regressor.
///
/// Features are standardised internally. Training uses MSE loss, the
/// [`Adam`] optimiser with gradient clipping, and early stopping on the
/// validation dataset when one is supplied (matching §V-A of the paper).
#[derive(Debug, Clone)]
pub struct Mlp {
    params: MlpParams,
    /// Layer sizes including input and output: `[in, h1, ..., 1]`.
    sizes: Vec<usize>,
    /// Flat parameter buffer: per layer, weights (out*in) then biases (out).
    theta: Vec<f64>,
    scaler: Option<StandardScaler>,
}

impl Mlp {
    /// Creates an untrained MLP.
    pub fn new(params: MlpParams) -> Self {
        Mlp { params, sizes: Vec::new(), theta: Vec::new(), scaler: None }
    }

    /// Total number of trainable parameters (0 before fit).
    pub fn n_params(&self) -> usize {
        self.theta.len()
    }

    fn layer_offsets(sizes: &[usize]) -> Vec<(usize, usize, usize)> {
        // (weight_offset, bias_offset, next_offset) per layer
        let mut offs = Vec::new();
        let mut cur = 0;
        for l in 0..sizes.len() - 1 {
            let w = sizes[l + 1] * sizes[l];
            let b = sizes[l + 1];
            offs.push((cur, cur + w, cur + w + b));
            cur += w + b;
        }
        offs
    }

    fn init(&mut self, n_features: usize, rng: &mut impl Rng) {
        let mut sizes = vec![n_features];
        sizes.extend_from_slice(&self.params.hidden);
        sizes.push(1);
        let offs = Self::layer_offsets(&sizes);
        let total = offs.last().map_or(0, |o| o.2);
        let mut theta = vec![0.0; total];
        for (l, &(w_off, b_off, _)) in offs.iter().enumerate() {
            // He initialisation for ReLU layers.
            let scale = (2.0 / sizes[l] as f64).sqrt();
            for w in &mut theta[w_off..b_off] {
                *w = (rng.gen::<f64>() * 2.0 - 1.0) * scale;
            }
        }
        self.sizes = sizes;
        self.theta = theta;
    }

    /// Forward pass storing per-layer activations; returns activations
    /// (`acts[0]` is the input, `acts.last()` the scalar output).
    fn forward(&self, x: &[f64]) -> Vec<Vec<f64>> {
        let offs = Self::layer_offsets(&self.sizes);
        let n_layers = self.sizes.len() - 1;
        let mut acts: Vec<Vec<f64>> = Vec::with_capacity(n_layers + 1);
        acts.push(x.to_vec());
        for (l, &(w_off, b_off, _)) in offs.iter().enumerate() {
            let n_in = self.sizes[l];
            let n_out = self.sizes[l + 1];
            let prev = &acts[l];
            let mut out = vec![0.0; n_out];
            for (o, out_v) in out.iter_mut().enumerate() {
                let row = &self.theta[w_off + o * n_in..w_off + (o + 1) * n_in];
                let mut s = self.theta[b_off + o];
                for (w, a) in row.iter().zip(prev) {
                    s += w * a;
                }
                *out_v = if l + 1 < n_layers { s.max(0.0) } else { s };
            }
            acts.push(out);
        }
        acts
    }

    /// Accumulates gradients for one sample into `grad`; returns squared
    /// error.
    fn backward(&self, acts: &[Vec<f64>], target: f64, grad: &mut [f64]) -> f64 {
        let offs = Self::layer_offsets(&self.sizes);
        let n_layers = self.sizes.len() - 1;
        let out = acts[n_layers][0];
        let err = out - target;
        // dL/dout for MSE (factor 2 folded into lr choice; use 2*err for
        // textbook MSE derivative).
        let mut delta = vec![2.0 * err];
        for l in (0..n_layers).rev() {
            let (w_off, b_off, _) = offs[l];
            let n_in = self.sizes[l];
            let n_out = self.sizes[l + 1];
            let prev = &acts[l];
            let mut next_delta = vec![0.0; n_in];
            for o in 0..n_out {
                let d = delta[o];
                if d == 0.0 {
                    continue;
                }
                grad[b_off + o] += d;
                let w_row = w_off + o * n_in;
                for i in 0..n_in {
                    grad[w_row + i] += d * prev[i];
                    next_delta[i] += d * self.theta[w_row + i];
                }
            }
            if l > 0 {
                // ReLU derivative on the previous layer's activations.
                for (nd, a) in next_delta.iter_mut().zip(prev) {
                    if *a <= 0.0 {
                        *nd = 0.0;
                    }
                }
            }
            delta = next_delta;
        }
        err * err
    }

    fn eval(&self, data: &Dataset) -> f64 {
        let preds: Vec<f64> = (0..data.len())
            .map(|i| self.forward(data.sample(i).0).last().unwrap()[0])
            .collect();
        mse(&preds, data.y())
    }
}

impl Regressor for Mlp {
    fn fit(&mut self, train: &Dataset, val: Option<&Dataset>) {
        assert!(!train.is_empty(), "cannot fit MLP on an empty dataset");
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.params.seed);
        let scaler = StandardScaler::fit(train.x());
        let x = scaler.transform(train.x());
        let train_scaled = Dataset::new(x, train.y().to_vec()).expect("shape preserved");
        let val_scaled = val.map(|v| {
            Dataset::new(scaler.transform(v.x()), v.y().to_vec()).expect("shape preserved")
        });
        self.init(train.n_features(), &mut rng);
        self.scaler = None; // forward() during training uses pre-scaled data

        let mut adam = Adam::new(self.theta.len(), self.params.lr, self.params.clip_norm);
        let mut order: Vec<usize> = (0..train_scaled.len()).collect();
        let mut best_theta = self.theta.clone();
        let mut best_loss = f64::INFINITY;
        let mut stale = 0usize;
        let mut grad = vec![0.0; self.theta.len()];
        for _epoch in 0..self.params.max_epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(self.params.batch_size.max(1)) {
                grad.iter_mut().for_each(|g| *g = 0.0);
                for &i in chunk {
                    let (row, y) = train_scaled.sample(i);
                    let acts = self.forward(row);
                    self.backward(&acts, y, &mut grad);
                }
                let inv = 1.0 / chunk.len() as f64;
                grad.iter_mut().for_each(|g| *g *= inv);
                adam.step(&mut self.theta, &grad);
            }
            let monitored = val_scaled.as_ref().unwrap_or(&train_scaled);
            let loss = self.eval(monitored);
            if loss + 1e-12 < best_loss {
                best_loss = loss;
                best_theta.copy_from_slice(&self.theta);
                stale = 0;
            } else {
                stale += 1;
                if stale >= self.params.patience {
                    break;
                }
            }
        }
        self.theta = best_theta;
        self.scaler = Some(scaler);
    }

    fn predict_row(&self, x: &[f64]) -> f64 {
        let scaler = self.scaler.as_ref().expect("Mlp::predict_row called before fit");
        let z = scaler.transform_row(x);
        self.forward(&z).last().expect("network has layers")[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nonlinear_data(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64 * 4.0 - 2.0;
                vec![t, t * t]
            })
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| r[1] * 0.5 + r[0]).collect();
        Dataset::from_rows(&rows, &y).unwrap()
    }

    #[test]
    fn learns_smooth_function() {
        let data = nonlinear_data(120);
        let mut m = Mlp::new(MlpParams {
            hidden: vec![32],
            max_epochs: 300,
            clip_norm: None,
            lr: 3e-3,
            ..MlpParams::default()
        });
        m.fit(&data, None);
        let preds = m.predict(data.x());
        let err = mse(&preds, data.y());
        assert!(err < 0.1, "mse {err}");
    }

    #[test]
    fn early_stopping_restores_best_weights() {
        let data = nonlinear_data(60);
        let (train, val) = data.split(0.25, 3);
        let mut m = Mlp::new(MlpParams {
            hidden: vec![16],
            max_epochs: 150,
            patience: 10,
            clip_norm: None,
            lr: 3e-3,
            ..MlpParams::default()
        });
        m.fit(&train, Some(&val));
        // Validation error should be finite and reasonable after restore.
        let preds = m.predict(val.x());
        assert!(mse(&preds, val.y()).is_finite());
    }

    #[test]
    fn deterministic_per_seed() {
        let data = nonlinear_data(60);
        let params = MlpParams { hidden: vec![8], max_epochs: 30, ..MlpParams::default() };
        let mut a = Mlp::new(params.clone());
        let mut b = Mlp::new(params);
        a.fit(&data, None);
        b.fit(&data, None);
        assert_eq!(a.predict_row(data.sample(0).0), b.predict_row(data.sample(0).0));
    }

    #[test]
    fn param_count_matches_architecture() {
        let data = nonlinear_data(20);
        let mut m = Mlp::new(MlpParams {
            hidden: vec![5],
            max_epochs: 1,
            ..MlpParams::default()
        });
        m.fit(&data, None);
        // 2 inputs -> 5 hidden -> 1 output: (2*5 + 5) + (5*1 + 1) = 21.
        assert_eq!(m.n_params(), 21);
    }
}

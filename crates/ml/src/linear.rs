//! L1-regularised linear regression (Lasso) via cyclic coordinate descent.

use crate::dataset::Dataset;
use crate::matrix::{dot, gemv, Matrix};
use crate::scaler::StandardScaler;
use crate::Regressor;

/// Hyper-parameters for [`Lasso`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LassoParams {
    /// L1 penalty weight (scikit-learn's `alpha`).
    pub alpha: f64,
    /// Maximum number of full coordinate-descent sweeps.
    pub max_iter: usize,
    /// Stop when the largest coefficient update in a sweep falls below this.
    pub tol: f64,
}

impl Default for LassoParams {
    fn default() -> Self {
        LassoParams {
            alpha: 0.001,
            max_iter: 1000,
            tol: 1e-6,
        }
    }
}

/// Lasso regression: `y = x·w + b` with an L1 penalty on `w`.
///
/// The paper uses Lasso as the simplest stage-1 engine; its appeal is
/// training speed (Table IV's fastest row) at the cost of accuracy. Features
/// are standardised internally so the penalty treats them uniformly.
#[derive(Debug, Clone)]
pub struct Lasso {
    params: LassoParams,
    scaler: Option<StandardScaler>,
    weights: Vec<f64>,
    intercept: f64,
}

impl Lasso {
    /// Creates an untrained Lasso model.
    pub fn new(params: LassoParams) -> Self {
        Lasso {
            params,
            scaler: None,
            weights: Vec::new(),
            intercept: 0.0,
        }
    }

    /// Fitted coefficients in standardised feature space (empty before
    /// training).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Number of non-zero coefficients (the L1 penalty drives irrelevant
    /// features to exactly zero).
    pub fn n_active(&self) -> usize {
        self.weights.iter().filter(|w| **w != 0.0).count()
    }

    fn soft_threshold(z: f64, gamma: f64) -> f64 {
        if z > gamma {
            z - gamma
        } else if z < -gamma {
            z + gamma
        } else {
            0.0
        }
    }
}

impl Regressor for Lasso {
    fn fit(&mut self, train: &Dataset, _val: Option<&Dataset>) {
        assert!(!train.is_empty(), "cannot fit Lasso on an empty dataset");
        let scaler = StandardScaler::fit(train.x());
        let x = scaler.transform(train.x());
        let y = train.y();
        let n = x.rows() as f64;
        let d = x.cols();

        // Centre the target; the intercept absorbs its mean.
        let y_mean = y.iter().sum::<f64>() / n;
        let mut residual: Vec<f64> = y.iter().map(|v| v - y_mean).collect();

        // Column squared norms (columns are standardised, but guard anyway).
        let col_sq: Vec<f64> = (0..d)
            .map(|j| x.column(j).iter().map(|v| v * v).sum::<f64>())
            .collect();

        let mut w = vec![0.0; d];
        for _ in 0..self.params.max_iter {
            let mut max_delta: f64 = 0.0;
            for j in 0..d {
                if col_sq[j] < 1e-12 {
                    continue;
                }
                // rho = x_j . (residual + w_j * x_j)
                let mut rho = 0.0;
                for (r, res) in residual.iter().enumerate() {
                    let xj = x.get(r, j);
                    rho += xj * (res + w[j] * xj);
                }
                let new_w = Self::soft_threshold(rho / n, self.params.alpha) / (col_sq[j] / n);
                let delta = new_w - w[j];
                if delta != 0.0 {
                    for (r, res) in residual.iter_mut().enumerate() {
                        *res -= delta * x.get(r, j);
                    }
                    w[j] = new_w;
                    max_delta = max_delta.max(delta.abs());
                }
            }
            if max_delta < self.params.tol {
                break;
            }
        }
        self.scaler = Some(scaler);
        self.weights = w;
        self.intercept = y_mean;
    }

    fn predict_row(&self, x: &[f64]) -> f64 {
        let scaler = self
            .scaler
            .as_ref()
            .expect("Lasso::predict_row called before fit");
        let z = scaler.transform_row(x);
        assert_eq!(z.len(), self.weights.len(), "feature count mismatch");
        // Same `dot` kernel as the batched path, so both orders of
        // summation are identical.
        self.intercept + dot(&z, &self.weights)
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|r| self.predict_row(x.row(r))).collect()
    }

    /// Batched inference: one blocked [`gemv`] over the scaled row block
    /// instead of a dot product per row.
    fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        let scaler = self
            .scaler
            .as_ref()
            .expect("Lasso::predict_batch called before fit");
        let d = self.weights.len();
        let mut flat = Vec::with_capacity(rows.len() * d);
        for r in rows {
            let start = flat.len();
            flat.extend_from_slice(r);
            scaler.transform_row_in_place(&mut flat[start..]);
        }
        let mut y = vec![0.0; rows.len()];
        gemv(&flat, rows.len(), d, &self.weights, &mut y);
        for v in &mut y {
            *v += self.intercept;
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data(n: usize) -> Dataset {
        // y = 3*x0 - 2*x1 + 1, x2 is pure noise-free junk (constant).
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let a = (i as f64 * 0.7).sin() * 5.0;
                let b = (i as f64 * 1.3).cos() * 3.0;
                vec![a, b, 1.0]
            })
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] - 2.0 * r[1] + 1.0).collect();
        Dataset::from_rows(&rows, &y).unwrap()
    }

    #[test]
    fn recovers_linear_relationship() {
        let data = linear_data(100);
        let mut m = Lasso::new(LassoParams::default());
        m.fit(&data, None);
        let preds = m.predict(data.x());
        let err = crate::metrics::mse(&preds, data.y());
        assert!(err < 1e-2, "mse {err}");
    }

    #[test]
    fn strong_penalty_zeroes_weights() {
        let data = linear_data(100);
        let mut m = Lasso::new(LassoParams {
            alpha: 1e6,
            ..LassoParams::default()
        });
        m.fit(&data, None);
        assert_eq!(m.n_active(), 0);
        // Degenerates to predicting the mean.
        let mean = data.y().iter().sum::<f64>() / data.len() as f64;
        assert!((m.predict_row(data.sample(0).0) - mean).abs() < 1e-9);
    }

    #[test]
    fn sparsity_increases_with_alpha() {
        let data = linear_data(100);
        let mut weak = Lasso::new(LassoParams {
            alpha: 1e-4,
            ..LassoParams::default()
        });
        let mut strong = Lasso::new(LassoParams {
            alpha: 2.0,
            ..LassoParams::default()
        });
        weak.fit(&data, None);
        strong.fit(&data, None);
        assert!(strong.n_active() <= weak.n_active());
    }

    #[test]
    fn batched_inference_matches_scalar_path() {
        let data = linear_data(100);
        let mut m = Lasso::new(LassoParams::default());
        m.fit(&data, None);
        let rows: Vec<Vec<f64>> = (0..300)
            .map(|i| vec![(i as f64 * 0.31).sin() * 4.0, (i as f64 * 0.17).cos(), 1.0])
            .collect();
        let batched = m.predict_batch(&rows);
        let scalar: Vec<f64> = rows.iter().map(|r| m.predict_row(r)).collect();
        assert_eq!(batched, scalar);
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn predict_before_fit_panics() {
        Lasso::new(LassoParams::default()).predict_row(&[1.0]);
    }
}

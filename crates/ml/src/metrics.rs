//! Statistical metrics: Pearson correlation, regression errors, ROC AUC.

/// Pearson correlation coefficient between two equally sized samples.
///
/// Returns 0.0 when either sample has (numerically) zero variance, which is
/// the convention the paper's counter-selection step needs: a constant
/// counter carries no information about IPC and must not be selected.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson requires equally sized samples");
    let n = a.len() as f64;
    if a.is_empty() {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        let dx = x - ma;
        let dy = y - mb;
        cov += dx * dy;
        va += dx * dx;
        vb += dy * dy;
    }
    let denom = (va * vb).sqrt();
    if denom < 1e-12 {
        0.0
    } else {
        (cov / denom).clamp(-1.0, 1.0)
    }
}

/// Mean squared error between predictions and targets.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mse(pred: &[f64], target: &[f64]) -> f64 {
    assert_eq!(
        pred.len(),
        target.len(),
        "mse requires equally sized samples"
    );
    assert!(!pred.is_empty(), "mse of an empty sample is undefined");
    pred.iter()
        .zip(target)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / pred.len() as f64
}

/// Mean absolute error between predictions and targets.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mae(pred: &[f64], target: &[f64]) -> f64 {
    assert_eq!(
        pred.len(),
        target.len(),
        "mae requires equally sized samples"
    );
    assert!(!pred.is_empty(), "mae of an empty sample is undefined");
    pred.iter()
        .zip(target)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Area under the ROC curve for binary labels given real-valued scores.
///
/// Higher scores should indicate the positive class. Ties are handled with
/// the standard rank-based (Mann-Whitney) formulation. Returns 0.5 when
/// either class is absent, matching the "random guess" convention the paper
/// uses as the uninformative reference.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn roc_auc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(
        scores.len(),
        labels.len(),
        "roc_auc requires one label per score"
    );
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Rank scores ascending with mid-ranks for ties. `total_cmp` keeps
    // the sort a total order even with NaN scores (a broken probe model
    // can emit them), so equal — including NaN — scores land adjacent and
    // share one mid-rank instead of silently keeping input order.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores_tie(scores[order[j + 1]], scores[order[i]]) {
            j += 1;
        }
        let mid = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = mid;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = ranks
        .iter()
        .zip(labels)
        .filter_map(|(r, &l)| l.then_some(*r))
        .sum();
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos * n_neg) as f64
}

/// Whether two scores are the same ROC threshold. `==` except that NaN
/// ties with NaN: un-scorable decisions must form one threshold group,
/// not one ROC point each.
fn scores_tie(a: f64, b: f64) -> bool {
    a == b || (a.is_nan() && b.is_nan())
}

/// One point of a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// False positive rate at this threshold.
    pub fpr: f64,
    /// True positive rate at this threshold.
    pub tpr: f64,
    /// The score threshold producing this point (classify positive when
    /// `score >= threshold`).
    pub threshold: f64,
}

/// Computes the ROC curve (sorted by ascending FPR) for scores and labels.
///
/// The returned curve always starts at `(0, 0)` (threshold `+inf`) and ends
/// at `(1, 1)` (threshold `-inf`). Returns an empty curve when either class
/// is absent.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn roc_curve(scores: &[f64], labels: &[bool]) -> Vec<RocPoint> {
    assert_eq!(
        scores.len(),
        labels.len(),
        "roc_curve requires one label per score"
    );
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return Vec::new();
    }
    // Descending total order: NaN scores (un-scorable decisions) sort
    // first and collapse into a single threshold group below, one ROC
    // point per distinct threshold — never one per decision.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let mut curve = vec![RocPoint {
        fpr: 0.0,
        tpr: 0.0,
        threshold: f64::INFINITY,
    }];
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut i = 0;
    while i < order.len() {
        let threshold = scores[order[i]];
        // Consume all samples tied at this score before emitting a point.
        while i < order.len() && scores_tie(scores[order[i]], threshold) {
            if labels[order[i]] {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        curve.push(RocPoint {
            fpr: fp as f64 / n_neg as f64,
            tpr: tp as f64 / n_pos as f64,
            threshold,
        });
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_correlation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [-2.0, -4.0, -6.0, -8.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_sample_is_zero() {
        let a = [1.0, 1.0, 1.0];
        let b = [1.0, 2.0, 3.0];
        assert_eq!(pearson(&a, &b), 0.0);
    }

    #[test]
    fn mse_and_mae() {
        let p = [1.0, 2.0];
        let t = [0.0, 4.0];
        assert!((mse(&p, &t) - 2.5).abs() < 1e-12);
        assert!((mae(&p, &t) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn auc_separable_is_one() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [false, false, true, true];
        assert!((roc_auc(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auc_inverted_is_zero() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [false, false, true, true];
        assert!(roc_auc(&scores, &labels).abs() < 1e-12);
    }

    #[test]
    fn auc_single_class_is_half() {
        assert_eq!(roc_auc(&[0.3, 0.7], &[true, true]), 0.5);
        assert_eq!(roc_auc(&[0.3, 0.7], &[false, false]), 0.5);
    }

    #[test]
    fn auc_with_ties() {
        // Two positives and two negatives all tied: AUC must be 0.5.
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        assert!((roc_auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn roc_curve_endpoints() {
        let scores = [0.1, 0.4, 0.35, 0.8];
        let labels = [false, true, false, true];
        let curve = roc_curve(&scores, &labels);
        let first = curve.first().unwrap();
        let last = curve.last().unwrap();
        assert_eq!((first.fpr, first.tpr), (0.0, 0.0));
        assert_eq!((last.fpr, last.tpr), (1.0, 1.0));
        // Monotone non-decreasing in both axes.
        for w in curve.windows(2) {
            assert!(w[1].fpr >= w[0].fpr);
            assert!(w[1].tpr >= w[0].tpr);
        }
    }

    #[test]
    fn roc_curve_tied_scores_one_point_per_threshold() {
        // Six decisions over three distinct thresholds: exactly one curve
        // point per threshold (plus the (0,0) anchor), never one per
        // decision.
        let scores = [0.9, 0.9, 0.5, 0.5, 0.5, 0.1];
        let labels = [true, false, true, true, false, false];
        let curve = roc_curve(&scores, &labels);
        let expected = [
            RocPoint {
                fpr: 0.0,
                tpr: 0.0,
                threshold: f64::INFINITY,
            },
            RocPoint {
                fpr: 1.0 / 3.0,
                tpr: 1.0 / 3.0,
                threshold: 0.9,
            },
            RocPoint {
                fpr: 2.0 / 3.0,
                tpr: 1.0,
                threshold: 0.5,
            },
            RocPoint {
                fpr: 1.0,
                tpr: 1.0,
                threshold: 0.1,
            },
        ];
        assert_eq!(curve, expected);
    }

    #[test]
    fn roc_curve_nan_scores_collapse_to_one_point() {
        // NaN != NaN, so a naive `==` tie check emits one point per NaN
        // decision; they must form a single threshold group instead.
        let scores = [f64::NAN, f64::NAN, f64::NAN, 0.8, 0.2];
        let labels = [true, false, true, true, false];
        let curve = roc_curve(&scores, &labels);
        assert_eq!(
            curve.len(),
            4,
            "anchor + NaN group + two finite thresholds: {curve:?}"
        );
        let nan_point = &curve[1];
        assert!(nan_point.threshold.is_nan());
        assert!((nan_point.tpr - 2.0 / 3.0).abs() < 1e-12);
        assert!((nan_point.fpr - 0.5).abs() < 1e-12);
        // Curve stays monotone through the NaN group.
        for w in curve.windows(2) {
            assert!(w[1].fpr >= w[0].fpr && w[1].tpr >= w[0].tpr);
        }
    }

    #[test]
    fn auc_with_nan_scores_is_deterministic() {
        // Mid-ranked NaN group: the same inputs in any storage order give
        // the same AUC (total_cmp makes the sort a total order).
        let scores = [f64::NAN, 0.9, f64::NAN, 0.1];
        let labels = [true, true, false, false];
        let auc = roc_auc(&scores, &labels);
        let scores_rev = [0.1, f64::NAN, 0.9, f64::NAN];
        let labels_rev = [false, false, true, true];
        assert_eq!(auc, roc_auc(&scores_rev, &labels_rev));
        assert!(auc.is_finite());
    }

    #[test]
    fn roc_curve_matches_auc_trapezoid() {
        let scores = [0.05, 0.3, 0.2, 0.6, 0.9, 0.7];
        let labels = [false, false, true, true, true, false];
        let curve = roc_curve(&scores, &labels);
        let mut area = 0.0;
        for w in curve.windows(2) {
            area += (w[1].fpr - w[0].fpr) * (w[1].tpr + w[0].tpr) / 2.0;
        }
        assert!((area - roc_auc(&scores, &labels)).abs() < 1e-12);
    }
}

//! Z-score feature standardisation.

use crate::matrix::Matrix;

/// Per-feature z-score scaler (`(x - mean) / std`).
///
/// Features with zero variance (e.g. microarchitecture design parameters
/// that do not vary within a training set) carry no signal, so they are
/// mapped to exactly `0.0` — for training *and* unseen data. The previous
/// behaviour of dividing by a clamped std passed `x - mean` through for
/// unseen values, which is numerically harmless on the training set (where
/// it is ~0 up to rounding) but leaks an unstandardised raw offset at
/// inference time.
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
    constant: Vec<bool>,
}

impl StandardScaler {
    /// Learns means and standard deviations from the rows of `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has no rows.
    pub fn fit(x: &Matrix) -> Self {
        assert!(x.rows() > 0, "cannot fit a scaler on an empty matrix");
        let n = x.rows() as f64;
        let mut means = vec![0.0; x.cols()];
        for r in 0..x.rows() {
            for (m, v) in means.iter_mut().zip(x.row(r)) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; x.cols()];
        for r in 0..x.rows() {
            for ((var, v), m) in vars.iter_mut().zip(x.row(r)).zip(&means) {
                let d = v - m;
                *var += d * d;
            }
        }
        let raw: Vec<f64> = vars.into_iter().map(|v| (v / n).sqrt()).collect();
        let constant: Vec<bool> = raw.iter().map(|&s| s <= 1e-12).collect();
        let stds = raw
            .iter()
            .zip(&constant)
            .map(|(&s, &c)| if c { 1.0 } else { s })
            .collect();
        StandardScaler {
            means,
            stds,
            constant,
        }
    }

    /// Transforms a matrix into standardised space.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted feature count.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.means.len(), "feature count mismatch");
        let mut out = x.clone();
        for r in 0..out.rows() {
            self.transform_row_in_place(out.row_mut(r));
        }
        out
    }

    /// Standardises one feature row in place.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the fitted feature count.
    pub fn transform_row_in_place(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.means.len(), "feature count mismatch");
        for (j, v) in row.iter_mut().enumerate() {
            *v = if self.constant[j] {
                0.0
            } else {
                (*v - self.means[j]) / self.stds[j]
            };
        }
    }

    /// Standardises one feature row into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the fitted feature count.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        let mut out = row.to_vec();
        self.transform_row_in_place(&mut out);
        out
    }

    /// Fitted per-feature means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Fitted per-feature standard deviations (1.0 for constant features).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Per-feature constant-column mask (true where the training data had
    /// zero variance; those features transform to exactly 0.0).
    pub fn constant(&self) -> &[bool] {
        &self.constant
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardises_to_zero_mean_unit_std() {
        let x = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 10.0], vec![5.0, 10.0]]).unwrap();
        let scaler = StandardScaler::fit(&x);
        let t = scaler.transform(&x);
        let mean0: f64 = t.column(0).iter().sum::<f64>() / 3.0;
        assert!(mean0.abs() < 1e-12);
        // Constant column survives without NaN.
        assert!(t.column(1).iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn constant_columns_map_to_exactly_zero() {
        // Column 1 is constant in training; column 0 varies.
        let x = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 10.0], vec![5.0, 10.0]]).unwrap();
        let scaler = StandardScaler::fit(&x);
        assert_eq!(scaler.constant(), &[false, true]);
        // Unseen data with a *different* value in the constant column must
        // still map to exactly 0.0, not to the raw offset (99 - 10).
        let t = scaler.transform_row(&[3.0, 99.0]);
        assert_eq!(t[1], 0.0);
        // Round trip of the varying column: v * std + mean recovers the
        // input exactly for values representable without rounding.
        assert_eq!(t[0] * scaler.stds()[0] + scaler.means()[0], 3.0);
    }

    #[test]
    fn row_and_matrix_transforms_agree() {
        let x = Matrix::from_rows(&[vec![2.0, -1.0], vec![4.0, 3.0]]).unwrap();
        let scaler = StandardScaler::fit(&x);
        let m = scaler.transform(&x);
        let r = scaler.transform_row(x.row(1));
        assert_eq!(m.row(1), r.as_slice());
    }
}

//! A minimal row-major dense matrix and the linear-algebra kernels the
//! neural engines batch through.
//!
//! The slice-level kernels ([`dot`], [`axpy`], [`gemv`], [`gemv_acc`],
//! [`matmul`], [`matmul_transb`], [`matmul_ta`]) operate on flat row-major
//! buffers so engine parameter blocks (stored inside flat `theta` vectors)
//! can be used directly without copying. The matmul variants are
//! cache-blocked over the reduction dimension, and [`matmul_transb`] takes
//! its second operand pre-transposed so the inner loop streams both
//! operands contiguously — the layout the MLP/CNN forward passes use for
//! `X · Wᵀ`.
//!
//! [`dot`] and [`axpy`] — the innermost loops of every kernel here — use
//! explicit 4-lane unrolled accumulators so the optimiser can keep four
//! independent f64 lanes in flight (see the SIMD-width audit in
//! `docs/ENGINES.md` for measured numbers).
//!
//! ```
//! use perfbug_ml::matrix::{axpy, dot, Matrix};
//!
//! let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
//! assert_eq!(a.gemv(&[1.0, 1.0]), vec![3.0, 7.0]);
//! assert_eq!(a.matmul(&a).row(0), &[7.0, 10.0]);
//!
//! assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
//! let mut y = [1.0, 1.0];
//! axpy(2.0, &[10.0, 20.0], &mut y); // y += 2 * x
//! assert_eq!(y, [21.0, 41.0]);
//! ```

use std::fmt;

/// Reduction-dimension block size for the blocked matmul kernels; sized so
/// one block of each operand row stays resident in L1.
const K_BLOCK: usize = 256;

/// The dot product of two equal-length slices (4-way unrolled).
///
/// # Panics
///
/// Panics (in debug builds) if lengths differ.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let mut chunks_x = x.chunks_exact(4);
    let mut chunks_y = y.chunks_exact(4);
    let mut acc = [0.0f64; 4];
    for (cx, cy) in chunks_x.by_ref().zip(chunks_y.by_ref()) {
        acc[0] += cx[0] * cy[0];
        acc[1] += cx[1] * cy[1];
        acc[2] += cx[2] * cy[2];
        acc[3] += cx[3] * cy[3];
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (a, b) in chunks_x.remainder().iter().zip(chunks_y.remainder()) {
        s += a * b;
    }
    s
}

/// `y += alpha * x` (4-way unrolled; bit-identical to the scalar loop
/// since every output element is an independent fused update).
///
/// # Panics
///
/// Panics (in debug builds) if lengths differ.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    let mut chunks_y = y.chunks_exact_mut(4);
    let mut chunks_x = x.chunks_exact(4);
    for (cy, cx) in chunks_y.by_ref().zip(chunks_x.by_ref()) {
        cy[0] += alpha * cx[0];
        cy[1] += alpha * cx[1];
        cy[2] += alpha * cx[2];
        cy[3] += alpha * cx[3];
    }
    for (yi, xi) in chunks_y
        .into_remainder()
        .iter_mut()
        .zip(chunks_x.remainder())
    {
        *yi += alpha * xi;
    }
}

/// `y = A·x` for a row-major `m x n` matrix `a`: each output element is a
/// contiguous dot product.
///
/// # Panics
///
/// Panics if buffer sizes do not match the shape.
pub fn gemv(a: &[f64], m: usize, n: usize, x: &[f64], y: &mut [f64]) {
    assert_eq!(a.len(), m * n, "matrix buffer does not match shape");
    assert_eq!(x.len(), n, "input length mismatch");
    assert_eq!(y.len(), m, "output length mismatch");
    if n == 0 {
        // Zero-width matrix: the product is the zero vector; honour the
        // overwrite contract even though there are no rows to stream.
        y.iter_mut().for_each(|v| *v = 0.0);
        return;
    }
    for (yi, row) in y.iter_mut().zip(a.chunks_exact(n)) {
        *yi = dot(row, x);
    }
}

/// `y += A·x` (accumulating [`gemv`]).
///
/// # Panics
///
/// Panics if buffer sizes do not match the shape.
pub fn gemv_acc(a: &[f64], m: usize, n: usize, x: &[f64], y: &mut [f64]) {
    assert_eq!(a.len(), m * n, "matrix buffer does not match shape");
    assert_eq!(x.len(), n, "input length mismatch");
    assert_eq!(y.len(), m, "output length mismatch");
    if n == 0 {
        return; // A·x is the zero vector; accumulating adds nothing.
    }
    for (yi, row) in y.iter_mut().zip(a.chunks_exact(n)) {
        *yi += dot(row, x);
    }
}

/// `C = A·Bᵀ` with `a` of shape `m x k` and `b` of shape `n x k`, both
/// row-major — i.e. `b` holds the second operand already transposed, so
/// every inner product streams two contiguous rows. Blocked over `k` so
/// the active row segments stay cache-resident; `c` (shape `m x n`) is
/// overwritten.
///
/// # Panics
///
/// Panics if buffer sizes do not match the shapes.
pub fn matmul_transb(a: &[f64], b: &[f64], m: usize, k: usize, n: usize, c: &mut [f64]) {
    assert_eq!(a.len(), m * k, "A buffer does not match shape");
    assert_eq!(b.len(), n * k, "B buffer does not match shape");
    assert_eq!(c.len(), m * n, "C buffer does not match shape");
    c.iter_mut().for_each(|v| *v = 0.0);
    let mut k0 = 0;
    while k0 < k {
        let kb = (k - k0).min(K_BLOCK);
        for i in 0..m {
            let a_seg = &a[i * k + k0..i * k + k0 + kb];
            let c_row = &mut c[i * n..(i + 1) * n];
            for j in 0..n {
                c_row[j] += dot(a_seg, &b[j * k + k0..j * k + k0 + kb]);
            }
        }
        k0 += kb;
    }
}

/// `C = A·B` with `a` of shape `m x k` and `b` of shape `k x n`, row-major.
/// Uses the gaxpy form (`C[i] += A[i][l] * B[l]`) so the inner loop
/// streams contiguous rows of `B` and `C`; blocked over `k`. `c` (shape
/// `m x n`) is overwritten.
///
/// # Panics
///
/// Panics if buffer sizes do not match the shapes.
pub fn matmul(a: &[f64], b: &[f64], m: usize, k: usize, n: usize, c: &mut [f64]) {
    assert_eq!(a.len(), m * k, "A buffer does not match shape");
    assert_eq!(b.len(), k * n, "B buffer does not match shape");
    assert_eq!(c.len(), m * n, "C buffer does not match shape");
    c.iter_mut().for_each(|v| *v = 0.0);
    let mut k0 = 0;
    while k0 < k {
        let kb = (k - k0).min(K_BLOCK);
        for i in 0..m {
            let c_row = &mut c[i * n..(i + 1) * n];
            for l in k0..k0 + kb {
                axpy(a[i * k + l], &b[l * n..(l + 1) * n], c_row);
            }
        }
        k0 += kb;
    }
}

/// `C += AᵀB` with `a` of shape `m x k` and `b` of shape `m x n`,
/// row-major; `c` has shape `k x n` and is **accumulated into** — the
/// layout of a batched weight-gradient update (`dW += deltaᵀ · acts`).
///
/// # Panics
///
/// Panics if buffer sizes do not match the shapes.
pub fn matmul_ta(a: &[f64], b: &[f64], m: usize, k: usize, n: usize, c: &mut [f64]) {
    assert_eq!(a.len(), m * k, "A buffer does not match shape");
    assert_eq!(b.len(), m * n, "B buffer does not match shape");
    assert_eq!(c.len(), k * n, "C buffer does not match shape");
    for i in 0..m {
        let b_row = &b[i * n..(i + 1) * n];
        for l in 0..k {
            axpy(a[i * k + l], b_row, &mut c[l * n..(l + 1) * n]);
        }
    }
}

/// Row-major dense matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a slice of equally sized rows.
    ///
    /// Returns `None` when rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Option<Self> {
        let cols = rows.first().map_or(0, Vec::len);
        if rows.iter().any(|r| r.len() != cols) {
            return None;
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Some(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn column(&self, c: usize) -> Vec<f64> {
        assert!(
            c < self.cols,
            "column {c} out of bounds ({} cols)",
            self.cols
        );
        (0..self.rows)
            .map(|r| self.data[r * self.cols + c])
            .collect()
    }

    /// Returns a new matrix containing only the selected rows, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &r in indices {
            data.extend_from_slice(self.row(r));
        }
        Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Returns a new matrix containing only the selected columns, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_columns(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(self.rows * indices.len());
        for r in 0..self.rows {
            let row = self.row(r);
            for &c in indices {
                assert!(c < self.cols, "column {c} out of bounds");
                data.push(row[c]);
            }
        }
        Matrix {
            rows: self.rows,
            cols: indices.len(),
            data,
        }
    }

    /// Flat row-major view of the underlying buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// `self · other` via the blocked [`matmul`] kernel.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        matmul(
            &self.data,
            &other.data,
            self.rows,
            self.cols,
            other.cols,
            &mut out.data,
        );
        out
    }

    /// `self · otherᵀ` via the blocked transposed-B kernel
    /// ([`matmul_transb`]); `other` is `n x k` with `k == self.cols()`.
    ///
    /// # Panics
    ///
    /// Panics if the shared dimension disagrees.
    pub fn matmul_transb(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "shared dimension must agree");
        let mut out = Matrix::zeros(self.rows, other.rows);
        matmul_transb(
            &self.data,
            &other.data,
            self.rows,
            self.cols,
            other.rows,
            &mut out.data,
        );
        out
    }

    /// `self · x` via the [`gemv`] kernel.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn gemv(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        gemv(&self.data, self.rows, self.cols, x, &mut y);
        y
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows <= 8 && self.cols <= 8 {
            for r in 0..self.rows {
                write!(f, "\n  {:?}", self.row(r))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_rejects_ragged_input() {
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_none());
    }

    #[test]
    fn from_rows_roundtrips() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.column(0), vec![1.0, 3.0]);
        assert_eq!(m.get(0, 1), 2.0);
    }

    #[test]
    fn select_rows_and_columns() {
        let m = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ])
        .unwrap();
        let rows = m.select_rows(&[2, 0]);
        assert_eq!(rows.row(0), &[7.0, 8.0, 9.0]);
        assert_eq!(rows.row(1), &[1.0, 2.0, 3.0]);
        let cols = m.select_columns(&[2, 1]);
        assert_eq!(cols.row(1), &[6.0, 5.0]);
    }

    #[test]
    fn set_and_get() {
        let mut m = Matrix::zeros(2, 2);
        m.set(1, 0, 5.0);
        assert_eq!(m.get(1, 0), 5.0);
        assert_eq!(m.as_slice(), &[0.0, 0.0, 5.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        Matrix::zeros(1, 1).row(1);
    }

    /// Reference implementation for kernel validation.
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for l in 0..a.cols() {
                    s += a.get(i, l) * b.get(l, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    fn pseudo_matrix(rows: usize, cols: usize, salt: u64) -> Matrix {
        let data: Vec<f64> = (0..rows * cols)
            .map(|i| (((i as u64 * 2654435761 + salt * 97) % 1000) as f64 - 500.0) / 250.0)
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    fn assert_close(a: &Matrix, b: &Matrix) {
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.cols(), b.cols());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-9, "{x} != {y}");
        }
    }

    #[test]
    fn blocked_matmul_matches_naive() {
        // Shapes straddling the K block size exercise the tail logic.
        for (m, k, n) in [(1, 1, 1), (3, 5, 4), (17, 300, 9), (8, 256, 8), (2, 257, 3)] {
            let a = pseudo_matrix(m, k, 1);
            let b = pseudo_matrix(k, n, 2);
            assert_close(&a.matmul(&b), &naive_matmul(&a, &b));
        }
    }

    #[test]
    fn transb_matmul_matches_naive() {
        for (m, k, n) in [(4, 7, 3), (5, 300, 6), (1, 512, 1)] {
            let a = pseudo_matrix(m, k, 3);
            let bt = pseudo_matrix(n, k, 4); // B^T stored row-major
                                             // Materialise B to compare against the naive product.
            let mut b = Matrix::zeros(k, n);
            for j in 0..n {
                for l in 0..k {
                    b.set(l, j, bt.get(j, l));
                }
            }
            assert_close(&a.matmul_transb(&bt), &naive_matmul(&a, &b));
        }
    }

    #[test]
    fn matmul_ta_accumulates_a_transpose_b() {
        let (m, k, n) = (6, 4, 5);
        let a = pseudo_matrix(m, k, 5);
        let b = pseudo_matrix(m, n, 6);
        let mut c = vec![1.0; k * n]; // pre-seeded: kernel accumulates
        matmul_ta(a.as_slice(), b.as_slice(), m, k, n, &mut c);
        for i in 0..k {
            for j in 0..n {
                let mut expect = 1.0;
                for s in 0..m {
                    expect += a.get(s, i) * b.get(s, j);
                }
                assert!((c[i * n + j] - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn gemv_matches_matmul_column() {
        let a = pseudo_matrix(9, 31, 7);
        let x: Vec<f64> = (0..31).map(|i| (i as f64 * 0.3).cos()).collect();
        let y = a.gemv(&x);
        let xm = Matrix::from_vec(31, 1, x.clone());
        let expect = naive_matmul(&a, &xm);
        for (i, yi) in y.iter().enumerate() {
            assert!((yi - expect.get(i, 0)).abs() < 1e-9);
        }
        // Accumulating variant adds on top.
        let mut y2 = y.clone();
        gemv_acc(a.as_slice(), 9, 31, &x, &mut y2);
        for (y2i, yi) in y2.iter().zip(&y) {
            assert!((y2i - 2.0 * yi).abs() < 1e-9);
        }
    }

    #[test]
    fn gemv_zero_width_overwrites_output() {
        let mut y = vec![7.0, 8.0, 9.0];
        gemv(&[], 3, 0, &[], &mut y);
        assert_eq!(y, vec![0.0, 0.0, 0.0]);
        let mut y2 = vec![1.5, 2.5];
        gemv_acc(&[], 2, 0, &[], &mut y2);
        assert_eq!(y2, vec![1.5, 2.5]);
    }

    #[test]
    fn dot_and_axpy_basics() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 0.5, 1.0, 0.25, 2.0];
        assert!((dot(&x, &y) - (2.0 + 1.0 + 3.0 + 1.0 + 10.0)).abs() < 1e-12);
        let mut z = y;
        axpy(2.0, &x, &mut z);
        assert_eq!(z, [4.0, 4.5, 7.0, 8.25, 12.0]);
    }
}

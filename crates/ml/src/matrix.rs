//! A minimal row-major dense matrix.
//!
//! The engines in this crate only need a handful of operations; this type
//! provides exactly those rather than pulling in a linear-algebra crate.

use std::fmt;

/// Row-major dense matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds a matrix from a slice of equally sized rows.
    ///
    /// Returns `None` when rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Option<Self> {
        let cols = rows.first().map_or(0, Vec::len);
        if rows.iter().any(|r| r.len() != cols) {
            return None;
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Some(Matrix { rows: rows.len(), cols, data })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn column(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column {c} out of bounds ({} cols)", self.cols);
        (0..self.rows).map(|r| self.data[r * self.cols + c]).collect()
    }

    /// Returns a new matrix containing only the selected rows, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &r in indices {
            data.extend_from_slice(self.row(r));
        }
        Matrix { rows: indices.len(), cols: self.cols, data }
    }

    /// Returns a new matrix containing only the selected columns, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_columns(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(self.rows * indices.len());
        for r in 0..self.rows {
            let row = self.row(r);
            for &c in indices {
                assert!(c < self.cols, "column {c} out of bounds");
                data.push(row[c]);
            }
        }
        Matrix { rows: self.rows, cols: indices.len(), data }
    }

    /// Flat row-major view of the underlying buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows <= 8 && self.cols <= 8 {
            for r in 0..self.rows {
                write!(f, "\n  {:?}", self.row(r))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_rejects_ragged_input() {
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_none());
    }

    #[test]
    fn from_rows_roundtrips() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.column(0), vec![1.0, 3.0]);
        assert_eq!(m.get(0, 1), 2.0);
    }

    #[test]
    fn select_rows_and_columns() {
        let m = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ])
        .unwrap();
        let rows = m.select_rows(&[2, 0]);
        assert_eq!(rows.row(0), &[7.0, 8.0, 9.0]);
        assert_eq!(rows.row(1), &[1.0, 2.0, 3.0]);
        let cols = m.select_columns(&[2, 1]);
        assert_eq!(cols.row(1), &[6.0, 5.0]);
    }

    #[test]
    fn set_and_get() {
        let mut m = Matrix::zeros(2, 2);
        m.set(1, 0, 5.0);
        assert_eq!(m.get(1, 0), 5.0);
        assert_eq!(m.as_slice(), &[0.0, 0.0, 5.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        Matrix::zeros(1, 1).row(1);
    }
}

//! # perfbug-ml
//!
//! From-scratch machine learning engines and metrics used by the
//! performance-bug-detection methodology of *"Automatic Microprocessor
//! Performance Bug Detection"* (HPCA 2021).
//!
//! The paper's stage-1 IPC models are implemented natively in Rust:
//!
//! * [`Lasso`] — L1-regularised linear regression (scikit-learn analogue),
//! * [`Mlp`] — multi-layer perceptron (Keras analogue),
//! * [`Cnn`] — 1-D convolutional network (Keras analogue),
//! * [`Lstm`] — long short-term memory network (Keras analogue),
//! * [`Gbt`] — gradient-boosted regression trees (XGBoost analogue) with
//!   LightGBM-style histogram split finding by default (see
//!   [`SplitStrategy`] and the [`gbt`] module docs).
//!
//! All engines train with deterministic seeded initialisation so that
//! experiments are reproducible. Neural engines use the [`Adam`] optimiser
//! with gradient clipping and early stopping on a validation set, matching
//! the training protocol of the paper (§V-A).
//!
//! ```
//! use perfbug_ml::{Dataset, Gbt, GbtParams, Regressor};
//!
//! // y = 2*x0 + noise-free offset
//! let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
//! let y = vec![0.0, 2.0, 4.0, 6.0];
//! let data = Dataset::from_rows(&x, &y).unwrap();
//! let mut model = Gbt::new(GbtParams { n_trees: 50, ..GbtParams::default() });
//! model.fit(&data, None);
//! let pred = model.predict_row(&[1.5]);
//! assert!((pred - 3.0).abs() < 1.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adam;
mod cnn;
pub mod dataset;
pub mod gbt;
mod linear;
mod lstm;
pub mod matrix;
pub mod metrics;
mod mlp;
mod scaler;

pub use adam::Adam;
pub use cnn::{Cnn, CnnParams};
pub use dataset::{Dataset, DatasetError, Sequence};
pub use gbt::{BinnedDataset, Gbt, GbtParams, SplitStrategy};
pub use linear::{Lasso, LassoParams};
pub use lstm::{Lstm, LstmParams};
pub use matrix::{axpy, dot, gemv, gemv_acc, matmul, matmul_ta, matmul_transb, Matrix};
pub use mlp::{Mlp, MlpParams};
pub use scaler::StandardScaler;

/// A trained (or trainable) regression model operating on independent rows.
///
/// Implemented by every stage-1 engine except [`Lstm`], which consumes whole
/// time-series sequences and implements [`SequenceRegressor`] instead.
pub trait Regressor {
    /// Fits the model to `train`. When `val` is provided, engines that
    /// support early stopping monitor validation loss and restore the best
    /// parameters seen (the paper stops after 100 epochs without
    /// improvement on the validation microarchitectures).
    fn fit(&mut self, train: &Dataset, val: Option<&Dataset>);

    /// Predicts the target for a single feature row.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the feature count seen during
    /// [`fit`](Regressor::fit).
    fn predict_row(&self, x: &[f64]) -> f64;

    /// Predicts the target for every row of `x`.
    fn predict(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|r| self.predict_row(x.row(r))).collect()
    }

    /// Predicts the target for a batch of feature rows.
    ///
    /// The default delegates to [`predict_row`](Regressor::predict_row);
    /// engines whose forward pass is linear-algebra shaped ([`Mlp`],
    /// [`Lasso`]) override it to run the whole batch through the blocked
    /// `matmul`/`gemv` kernels. Overrides must match the row-by-row path
    /// exactly while the reduction fits one kernel block (256 features),
    /// and to blocked-summation rounding beyond that.
    fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict_row(r)).collect()
    }
}

/// A regression model over time-series sequences (one prediction per step).
pub trait SequenceRegressor {
    /// Fits the model on whole sequences, optionally early-stopping on a
    /// validation set of sequences.
    fn fit_sequences(&mut self, train: &[Sequence], val: Option<&[Sequence]>);

    /// Predicts one target value per time step of `seq`, consuming the
    /// sequence statefully from its first step.
    fn predict_sequence(&self, steps: &[Vec<f64>]) -> Vec<f64>;
}

//! The Adam optimiser with global-norm gradient clipping.
//!
//! Matches the training protocol of the paper (§V-A): Adam with a gradient
//! clipping of 0.01 to avoid gradient explosion in recurrent networks.

/// Adam optimiser state for a flat parameter vector.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    clip_norm: Option<f64>,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates an optimiser for `n` parameters with the given learning rate
    /// and optional global-norm gradient clipping.
    pub fn new(n: usize, lr: f64, clip_norm: Option<f64>) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip_norm,
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
        }
    }

    /// Applies one Adam update to `params` given `grads`.
    ///
    /// When clipping is enabled the gradient vector is rescaled so its L2
    /// norm does not exceed the configured threshold (Keras `clipnorm`
    /// semantics).
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grads` do not match the configured size.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len(), "parameter count mismatch");
        assert_eq!(grads.len(), self.m.len(), "gradient count mismatch");
        let mut scale = 1.0;
        if let Some(max_norm) = self.clip_norm {
            let norm = grads.iter().map(|g| g * g).sum::<f64>().sqrt();
            if norm > max_norm && norm > 0.0 {
                scale = max_norm / norm;
            }
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i] * scale;
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    /// Number of update steps performed so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_quadratic() {
        // Minimise (p - 3)^2 — Adam should approach p = 3.
        let mut p = vec![0.0];
        let mut opt = Adam::new(1, 0.1, None);
        for _ in 0..500 {
            let g = vec![2.0 * (p[0] - 3.0)];
            opt.step(&mut p, &g);
        }
        assert!((p[0] - 3.0).abs() < 1e-2, "got {}", p[0]);
    }

    #[test]
    fn clipping_limits_update_magnitude() {
        let mut clipped = vec![0.0];
        let mut free = vec![0.0];
        let huge = vec![1e9];
        let mut opt_c = Adam::new(1, 0.1, Some(0.01));
        let mut opt_f = Adam::new(1, 0.1, None);
        opt_c.step(&mut clipped, &huge);
        opt_f.step(&mut free, &huge);
        // Both take a step in the same direction; the first-step Adam update
        // magnitude is ~lr either way, but the accumulated second moment of
        // the clipped run must be vastly smaller.
        assert!(clipped[0] < 0.0 && free[0] < 0.0);
        // After a tiny follow-up gradient, the clipped optimiser recovers a
        // normal step size while the unclipped one is frozen by its huge v.
        let tiny = vec![1e-3];
        opt_c.step(&mut clipped, &tiny);
        opt_f.step(&mut free, &tiny);
        let c_step = clipped[0];
        let f_step = free[0];
        assert!(
            c_step.abs() > f_step.abs() * 0.5,
            "clip should keep Adam responsive"
        );
    }

    #[test]
    #[should_panic(expected = "parameter count mismatch")]
    fn size_mismatch_panics() {
        let mut opt = Adam::new(2, 0.1, None);
        let mut p = vec![0.0];
        opt.step(&mut p, &[0.0]);
    }
}

//! Long short-term memory network for per-step time-series regression.
//!
//! The paper feeds the counter time series of a probe to an LSTM and reads
//! an IPC estimate at every step; history is carried by the recurrent state
//! (§III-C). Models are named `<layers>-LSTM-<hidden>` (e.g. `1-LSTM-500`).
//! Training is full back-propagation through time with Adam and gradient
//! clipping — the paper notes that LSTMs are hard to train and exhibit
//! non-convergent outliers, which this implementation reproduces when the
//! clip is disabled.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

use crate::adam::Adam;
use crate::dataset::Sequence;
use crate::matrix::{axpy, dot, gemv_acc};
use crate::scaler::StandardScaler;
use crate::{Matrix, SequenceRegressor};

/// Hyper-parameters for [`Lstm`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LstmParams {
    /// Number of stacked LSTM layers (paper prefix).
    pub layers: usize,
    /// Hidden state width per layer (paper postfix).
    pub hidden: usize,
    /// Learning rate for Adam.
    pub lr: f64,
    /// Global-norm gradient clip (the paper uses 0.01).
    pub clip_norm: Option<f64>,
    /// Hard cap on training epochs.
    pub max_epochs: usize,
    /// Early-stopping patience in epochs.
    pub patience: usize,
    /// Seed for initialisation and shuffling.
    pub seed: u64,
}

impl Default for LstmParams {
    fn default() -> Self {
        LstmParams {
            layers: 1,
            hidden: 32,
            lr: 3e-3,
            clip_norm: Some(0.01),
            max_epochs: 200,
            patience: 100,
            seed: 0,
        }
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Parameter layout for one LSTM layer inside the flat buffer.
#[derive(Debug, Clone, Copy)]
struct LayerLayout {
    in_dim: usize,
    hidden: usize,
    /// Offset of `Wx` (`4H x in_dim`).
    wx: usize,
    /// Offset of `Wh` (`4H x H`).
    wh: usize,
    /// Offset of `b` (`4H`).
    b: usize,
}

impl LayerLayout {
    fn size(&self) -> usize {
        4 * self.hidden * (self.in_dim + self.hidden + 1)
    }
}

/// Activations of one layer over one sequence, kept for BPTT in flat
/// step-major buffers (stride `in_dim` for `x`, `4H` for `gates`, `H`
/// otherwise). Cleared and refilled per sequence, so the allocations are
/// reused across the whole fit.
#[derive(Debug, Default, Clone)]
struct LayerTrace {
    /// Inputs per step (`steps x in_dim`).
    x: Vec<f64>,
    /// Activated gates per step (`steps x 4H`, ordered `[i f g o]` to
    /// match the weight-row layout).
    gates: Vec<f64>,
    /// Cell state per step (`steps x H`).
    c: Vec<f64>,
    /// `tanh(c)` per step (`steps x H`).
    tc: Vec<f64>,
    /// Hidden state per step (`steps x H`).
    h: Vec<f64>,
}

impl LayerTrace {
    fn clear(&mut self) {
        self.x.clear();
        self.gates.clear();
        self.c.clear();
        self.tc.clear();
        self.h.clear();
    }
}

/// Reusable forward/backward buffers shared across the sequences and
/// epochs of one fit (or one prediction pass).
#[derive(Debug, Default)]
struct LstmScratch {
    /// Per-layer activation traces of the current sequence.
    traces: Vec<LayerTrace>,
    /// Per-step predictions of the current sequence.
    preds: Vec<f64>,
    /// Gate pre-activation / activation workspace (`4H`).
    gates: Vec<f64>,
    /// Per-layer carry of dL/dh from the future (`layers x H`).
    dh_next: Vec<f64>,
    /// Per-layer carry of dL/dc from the future (`layers x H`).
    dc_next: Vec<f64>,
    /// Gate-preactivation gradients (`4H`).
    da: Vec<f64>,
    /// Gradient flowing into the layer below / the input (`max in_dim`).
    dx: Vec<f64>,
    /// Gradient into the previous step's hidden state (`H`).
    dh_prev: Vec<f64>,
    /// dL/dh arriving from the layer above at the current step.
    dh_above: Vec<f64>,
    /// All-zero row standing in for pre-sequence state (`max dim`).
    zeros: Vec<f64>,
}

/// Stacked LSTM regressor with a linear per-step output head.
#[derive(Debug, Clone)]
pub struct Lstm {
    params: LstmParams,
    layouts: Vec<LayerLayout>,
    /// Flat parameters: all layers, then output head (`H` weights + bias).
    theta: Vec<f64>,
    out_w_off: usize,
    n_features: usize,
    scaler: Option<StandardScaler>,
}

impl Lstm {
    /// Creates an untrained LSTM.
    pub fn new(params: LstmParams) -> Self {
        Lstm {
            params,
            layouts: Vec::new(),
            theta: Vec::new(),
            out_w_off: 0,
            n_features: 0,
            scaler: None,
        }
    }

    /// Total number of trainable parameters (0 before fit).
    pub fn n_params(&self) -> usize {
        self.theta.len()
    }

    fn init(&mut self, n_features: usize, rng: &mut impl Rng) {
        self.n_features = n_features;
        self.layouts.clear();
        let h = self.params.hidden;
        let mut off = 0;
        for l in 0..self.params.layers.max(1) {
            let in_dim = if l == 0 { n_features } else { h };
            let layout = LayerLayout {
                in_dim,
                hidden: h,
                wx: off,
                wh: off + 4 * h * in_dim,
                b: off + 4 * h * (in_dim + h),
            };
            off += layout.size();
            self.layouts.push(layout);
        }
        self.out_w_off = off;
        let total = off + h + 1;
        let mut theta = vec![0.0; total];
        for layout in &self.layouts {
            let scale = (1.0 / layout.in_dim as f64).sqrt();
            for w in &mut theta[layout.wx..layout.wh] {
                *w = (rng.gen::<f64>() * 2.0 - 1.0) * scale;
            }
            let scale = (1.0 / layout.hidden as f64).sqrt();
            for w in &mut theta[layout.wh..layout.b] {
                *w = (rng.gen::<f64>() * 2.0 - 1.0) * scale;
            }
            // Forget-gate bias starts at 1.0 (standard trick for gradient
            // flow); other gate biases start at 0.
            for j in 0..layout.hidden {
                theta[layout.b + layout.hidden + j] = 1.0;
            }
        }
        let scale = (1.0 / h as f64).sqrt();
        for w in &mut theta[self.out_w_off..self.out_w_off + h] {
            *w = (rng.gen::<f64>() * 2.0 - 1.0) * scale;
        }
        self.theta = theta;
    }

    /// Runs the stack over `steps`, filling the scratch's traces and
    /// per-step predictions. The forward path allocates nothing once the
    /// scratch buffers reach steady state: each gate block is two
    /// [`gemv_acc`] kernels over contiguous weight rows.
    fn forward_into(&self, steps: &[Vec<f64>], scratch: &mut LstmScratch) {
        let h_dim = self.params.hidden;
        let n_layers = self.layouts.len();
        scratch.traces.resize_with(n_layers, LayerTrace::default);
        for tr in &mut scratch.traces {
            tr.clear();
        }
        scratch.preds.clear();
        scratch.gates.resize(4 * h_dim, 0.0);
        let max_dim = self
            .layouts
            .iter()
            .map(|l| l.in_dim)
            .max()
            .unwrap_or(0)
            .max(h_dim);
        scratch.zeros.clear();
        scratch.zeros.resize(max_dim, 0.0);

        let out_w = &self.theta[self.out_w_off..self.out_w_off + h_dim];
        let out_b = self.theta[self.out_w_off + h_dim];
        for (t, step) in steps.iter().enumerate() {
            for li in 0..n_layers {
                let layout = self.layouts[li];
                // Previous hidden state: this layer's own trace at t-1,
                // or zeros at the sequence start.
                let h_prev_start = t.saturating_sub(1) * h_dim;
                // Gate pre-activations: b + Wx·x + Wh·h_prev.
                let gates = &mut scratch.gates;
                gates.copy_from_slice(&self.theta[layout.b..layout.b + 4 * h_dim]);
                {
                    // Current input: the raw step for layer 0, the layer
                    // below's fresh hidden state otherwise. Borrow it out
                    // of the traces before mutating this layer's trace.
                    let x: &[f64] = if li == 0 {
                        step
                    } else {
                        let below = &scratch.traces[li - 1].h;
                        &below[t * h_dim..(t + 1) * h_dim]
                    };
                    gemv_acc(
                        &self.theta[layout.wx..layout.wx + 4 * h_dim * layout.in_dim],
                        4 * h_dim,
                        layout.in_dim,
                        x,
                        gates,
                    );
                    let h_prev: &[f64] = if t == 0 {
                        &scratch.zeros[..h_dim]
                    } else {
                        &scratch.traces[li].h[h_prev_start..h_prev_start + h_dim]
                    };
                    gemv_acc(
                        &self.theta[layout.wh..layout.wh + 4 * h_dim * h_dim],
                        4 * h_dim,
                        h_dim,
                        h_prev,
                        gates,
                    );
                    // Activate in place: i, f, o sigmoid; g tanh.
                    for (r, v) in gates.iter_mut().enumerate() {
                        *v = if (2 * h_dim..3 * h_dim).contains(&r) {
                            v.tanh()
                        } else {
                            sigmoid(*v)
                        };
                    }
                    // Record the input now that the gates no longer need it.
                    let tr_x = &mut scratch.traces[li];
                    if li == 0 {
                        tr_x.x.extend_from_slice(step);
                    }
                }
                if li > 0 {
                    // Copy the layer-below hidden state into this layer's
                    // input trace (split_at_mut to satisfy the borrows).
                    let (below, above) = scratch.traces.split_at_mut(li);
                    let src = &below[li - 1].h[t * h_dim..(t + 1) * h_dim];
                    above[0].x.extend_from_slice(src);
                }
                // State update: c = f*c_prev + i*g; h = o*tanh(c).
                let tr = &mut scratch.traces[li];
                tr.gates.extend_from_slice(&scratch.gates);
                let gates = &scratch.gates;
                for j in 0..h_dim {
                    let c_prev = if t == 0 {
                        0.0
                    } else {
                        tr.c[(t - 1) * h_dim + j]
                    };
                    let c = gates[h_dim + j] * c_prev + gates[j] * gates[2 * h_dim + j];
                    let tc = c.tanh();
                    tr.c.push(c);
                    tr.tc.push(tc);
                    tr.h.push(gates[3 * h_dim + j] * tc);
                }
            }
            let h_top = &scratch.traces[n_layers - 1].h[t * h_dim..(t + 1) * h_dim];
            scratch.preds.push(out_b + dot(out_w, h_top));
        }
    }

    /// BPTT for one sequence over the traces left by
    /// [`Lstm::forward_into`]; accumulates into `grad` and returns the
    /// mean squared error. All intermediates live in the scratch and every
    /// inner loop is an [`axpy`] over a contiguous weight or gradient row.
    fn backward(&self, scratch: &mut LstmScratch, targets: &[f64], grad: &mut [f64]) -> f64 {
        let h_dim = self.params.hidden;
        let n_layers = self.layouts.len();
        let steps = scratch.preds.len();
        let inv_t = 1.0 / steps as f64;
        let out_w = self.out_w_off;

        scratch.dh_next.clear();
        scratch.dh_next.resize(n_layers * h_dim, 0.0);
        scratch.dc_next.clear();
        scratch.dc_next.resize(n_layers * h_dim, 0.0);
        scratch.da.resize(4 * h_dim, 0.0);
        let max_in = self.layouts.iter().map(|l| l.in_dim).max().unwrap_or(0);
        scratch.dx.resize(max_in, 0.0);
        scratch.dh_prev.resize(h_dim, 0.0);
        scratch.dh_above.resize(max_in.max(h_dim), 0.0);

        let mut sq_err = 0.0;
        for t in (0..steps).rev() {
            let err = scratch.preds[t] - targets[t];
            sq_err += err * err;
            let d_pred = 2.0 * err * inv_t;
            // Output head gradient and seed for the top layer's dh.
            let top = n_layers - 1;
            let h_top = &scratch.traces[top].h[t * h_dim..(t + 1) * h_dim];
            grad[out_w + h_dim] += d_pred;
            axpy(d_pred, h_top, &mut grad[out_w..out_w + h_dim]);
            scratch.dh_above[..h_dim].copy_from_slice(&self.theta[out_w..out_w + h_dim]);
            scratch.dh_above[..h_dim]
                .iter_mut()
                .for_each(|v| *v *= d_pred);
            for li in (0..n_layers).rev() {
                let layout = self.layouts[li];
                let tr = &scratch.traces[li];
                let gates = &tr.gates[t * 4 * h_dim..(t + 1) * 4 * h_dim];
                let tc = &tr.tc[t * h_dim..(t + 1) * h_dim];
                // Gate-preactivation gradients.
                for j in 0..h_dim {
                    let dh = scratch.dh_above[j] + scratch.dh_next[li * h_dim + j];
                    let (i, f, g, o) = (
                        gates[j],
                        gates[h_dim + j],
                        gates[2 * h_dim + j],
                        gates[3 * h_dim + j],
                    );
                    let c_prev = if t > 0 {
                        tr.c[(t - 1) * h_dim + j]
                    } else {
                        0.0
                    };
                    let do_ = dh * tc[j];
                    let dc = dh * o * (1.0 - tc[j] * tc[j]) + scratch.dc_next[li * h_dim + j];
                    scratch.dc_next[li * h_dim + j] = dc * f;
                    scratch.da[j] = dc * g * i * (1.0 - i);
                    scratch.da[h_dim + j] = dc * c_prev * f * (1.0 - f);
                    scratch.da[2 * h_dim + j] = dc * i * (1.0 - g * g);
                    scratch.da[3 * h_dim + j] = do_ * o * (1.0 - o);
                }
                // Parameter gradients and downstream gradients.
                let x = &tr.x[t * layout.in_dim..(t + 1) * layout.in_dim];
                let h_prev: &[f64] = if t > 0 {
                    &tr.h[(t - 1) * h_dim..t * h_dim]
                } else {
                    &scratch.zeros[..h_dim]
                };
                let dx = &mut scratch.dx[..layout.in_dim];
                dx.iter_mut().for_each(|v| *v = 0.0);
                let dh_prev = &mut scratch.dh_prev[..h_dim];
                dh_prev.iter_mut().for_each(|v| *v = 0.0);
                for (r, &d) in scratch.da.iter().enumerate() {
                    if d == 0.0 {
                        continue;
                    }
                    grad[layout.b + r] += d;
                    let wx_row = layout.wx + r * layout.in_dim;
                    axpy(d, x, &mut grad[wx_row..wx_row + layout.in_dim]);
                    axpy(d, &self.theta[wx_row..wx_row + layout.in_dim], dx);
                    let wh_row = layout.wh + r * h_dim;
                    axpy(d, h_prev, &mut grad[wh_row..wh_row + h_dim]);
                    axpy(d, &self.theta[wh_row..wh_row + h_dim], dh_prev);
                }
                scratch.dh_next[li * h_dim..(li + 1) * h_dim].copy_from_slice(dh_prev);
                // dx feeds the layer below as part of its dh at this step.
                scratch.dh_above[..layout.in_dim].copy_from_slice(&scratch.dx[..layout.in_dim]);
            }
        }
        sq_err * inv_t
    }

    fn eval_with(&self, seqs: &[Sequence], scratch: &mut LstmScratch) -> f64 {
        let mut total = 0.0;
        let mut n = 0usize;
        for s in seqs {
            self.forward_into(&s.steps, scratch);
            for (p, y) in scratch.preds.iter().zip(&s.targets) {
                total += (p - y) * (p - y);
            }
            n += s.len();
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }

    #[cfg(test)]
    fn eval(&self, seqs: &[Sequence]) -> f64 {
        self.eval_with(seqs, &mut LstmScratch::default())
    }

    fn scale_sequences(&self, seqs: &[Sequence]) -> Vec<Sequence> {
        let scaler = self.scaler.as_ref().expect("scaler fitted");
        seqs.iter()
            .map(|s| Sequence {
                steps: s
                    .steps
                    .iter()
                    .map(|row| scaler.transform_row(row))
                    .collect(),
                targets: s.targets.clone(),
            })
            .collect()
    }
}

impl SequenceRegressor for Lstm {
    fn fit_sequences(&mut self, train: &[Sequence], val: Option<&[Sequence]>) {
        assert!(!train.is_empty(), "cannot fit LSTM on no sequences");
        let n_features = train[0].n_features();
        assert!(
            train
                .iter()
                .all(|s| s.n_features() == n_features && !s.is_empty()),
            "all training sequences must be non-empty with equal feature counts"
        );
        // Fit the scaler over every step of every sequence.
        let all_rows: Vec<Vec<f64>> = train.iter().flat_map(|s| s.steps.iter().cloned()).collect();
        let flat = Matrix::from_rows(&all_rows).expect("validated shapes");
        self.scaler = Some(StandardScaler::fit(&flat));

        let mut rng = rand::rngs::StdRng::seed_from_u64(self.params.seed);
        self.init(n_features, &mut rng);

        let train_scaled = self.scale_sequences(train);
        let val_scaled = val.map(|v| self.scale_sequences(v));

        let mut adam = Adam::new(self.theta.len(), self.params.lr, self.params.clip_norm);
        let mut order: Vec<usize> = (0..train_scaled.len()).collect();
        let mut grad = vec![0.0; self.theta.len()];
        let mut scratch = LstmScratch::default();
        let mut best = self.theta.clone();
        let mut best_loss = f64::INFINITY;
        let mut stale = 0;
        for _epoch in 0..self.params.max_epochs {
            order.shuffle(&mut rng);
            for &si in &order {
                let seq = &train_scaled[si];
                self.forward_into(&seq.steps, &mut scratch);
                grad.iter_mut().for_each(|g| *g = 0.0);
                self.backward(&mut scratch, &seq.targets, &mut grad);
                adam.step(&mut self.theta, &grad);
            }
            let loss = match &val_scaled {
                Some(v) => self.eval_with(v, &mut scratch),
                None => self.eval_with(&train_scaled, &mut scratch),
            };
            if loss.is_finite() && loss + 1e-12 < best_loss {
                best_loss = loss;
                best.copy_from_slice(&self.theta);
                stale = 0;
            } else {
                stale += 1;
                if stale >= self.params.patience {
                    break;
                }
            }
        }
        self.theta = best;
    }

    fn predict_sequence(&self, steps: &[Vec<f64>]) -> Vec<f64> {
        let scaler = self
            .scaler
            .as_ref()
            .expect("Lstm::predict_sequence called before fit");
        let scaled: Vec<Vec<f64>> = steps.iter().map(|r| scaler.transform_row(r)).collect();
        let mut scratch = LstmScratch::default();
        self.forward_into(&scaled, &mut scratch);
        scratch.preds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Target depends on the running mean of the input — requires state.
    fn stateful_sequences(n_seq: usize, len: usize) -> Vec<Sequence> {
        (0..n_seq)
            .map(|s| {
                let mut acc = 0.0;
                let mut steps = Vec::new();
                let mut targets = Vec::new();
                for t in 0..len {
                    let x = ((s * 7 + t) as f64 * 0.61).sin();
                    acc = 0.8 * acc + 0.2 * x;
                    steps.push(vec![x]);
                    targets.push(acc);
                }
                Sequence::new(steps, targets).unwrap()
            })
            .collect()
    }

    #[test]
    fn learns_stateful_target() {
        let seqs = stateful_sequences(6, 25);
        let mut m = Lstm::new(LstmParams {
            layers: 1,
            hidden: 12,
            max_epochs: 300,
            clip_norm: None,
            lr: 1e-2,
            ..LstmParams::default()
        });
        m.fit_sequences(&seqs, None);
        let mut total = 0.0;
        let mut n = 0;
        for s in &seqs {
            let preds = m.predict_sequence(&s.steps);
            for (p, y) in preds.iter().zip(&s.targets) {
                total += (p - y) * (p - y);
                n += 1;
            }
        }
        let err = total / n as f64;
        assert!(err < 0.02, "mse {err}");
    }

    #[test]
    fn stacked_layers_run() {
        let seqs = stateful_sequences(3, 10);
        let mut m = Lstm::new(LstmParams {
            layers: 2,
            hidden: 6,
            max_epochs: 10,
            ..LstmParams::default()
        });
        m.fit_sequences(&seqs, None);
        let preds = m.predict_sequence(&seqs[0].steps);
        assert_eq!(preds.len(), 10);
        assert!(preds.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn deterministic_per_seed() {
        let seqs = stateful_sequences(3, 8);
        let params = LstmParams {
            hidden: 4,
            max_epochs: 5,
            ..LstmParams::default()
        };
        let mut a = Lstm::new(params);
        let mut b = Lstm::new(params);
        a.fit_sequences(&seqs, None);
        b.fit_sequences(&seqs, None);
        assert_eq!(
            a.predict_sequence(&seqs[0].steps),
            b.predict_sequence(&seqs[0].steps)
        );
    }

    #[test]
    fn early_stopping_with_validation() {
        let seqs = stateful_sequences(6, 15);
        let (train, val) = seqs.split_at(4);
        let mut m = Lstm::new(LstmParams {
            hidden: 8,
            max_epochs: 120,
            patience: 15,
            ..LstmParams::default()
        });
        m.fit_sequences(train, Some(val));
        assert!(m.eval(&m.scale_sequences(val)).is_finite());
    }
}

//! Long short-term memory network for per-step time-series regression.
//!
//! The paper feeds the counter time series of a probe to an LSTM and reads
//! an IPC estimate at every step; history is carried by the recurrent state
//! (§III-C). Models are named `<layers>-LSTM-<hidden>` (e.g. `1-LSTM-500`).
//! Training is full back-propagation through time with Adam and gradient
//! clipping — the paper notes that LSTMs are hard to train and exhibit
//! non-convergent outliers, which this implementation reproduces when the
//! clip is disabled.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

use crate::adam::Adam;
use crate::dataset::Sequence;
use crate::scaler::StandardScaler;
use crate::{Matrix, SequenceRegressor};

/// Hyper-parameters for [`Lstm`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LstmParams {
    /// Number of stacked LSTM layers (paper prefix).
    pub layers: usize,
    /// Hidden state width per layer (paper postfix).
    pub hidden: usize,
    /// Learning rate for Adam.
    pub lr: f64,
    /// Global-norm gradient clip (the paper uses 0.01).
    pub clip_norm: Option<f64>,
    /// Hard cap on training epochs.
    pub max_epochs: usize,
    /// Early-stopping patience in epochs.
    pub patience: usize,
    /// Seed for initialisation and shuffling.
    pub seed: u64,
}

impl Default for LstmParams {
    fn default() -> Self {
        LstmParams {
            layers: 1,
            hidden: 32,
            lr: 3e-3,
            clip_norm: Some(0.01),
            max_epochs: 200,
            patience: 100,
            seed: 0,
        }
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Parameter layout for one LSTM layer inside the flat buffer.
#[derive(Debug, Clone, Copy)]
struct LayerLayout {
    in_dim: usize,
    hidden: usize,
    /// Offset of `Wx` (`4H x in_dim`).
    wx: usize,
    /// Offset of `Wh` (`4H x H`).
    wh: usize,
    /// Offset of `b` (`4H`).
    b: usize,
}

impl LayerLayout {
    fn size(&self) -> usize {
        4 * self.hidden * (self.in_dim + self.hidden + 1)
    }
}

/// Activations of one layer over one sequence, kept for BPTT.
#[derive(Debug, Default, Clone)]
struct LayerTrace {
    /// Inputs per step.
    x: Vec<Vec<f64>>,
    /// Gates per step: i, f, g, o (each length H).
    i: Vec<Vec<f64>>,
    f: Vec<Vec<f64>>,
    g: Vec<Vec<f64>>,
    o: Vec<Vec<f64>>,
    /// Cell state per step.
    c: Vec<Vec<f64>>,
    /// tanh(c) per step.
    tc: Vec<Vec<f64>>,
    /// Hidden state per step.
    h: Vec<Vec<f64>>,
}

/// Stacked LSTM regressor with a linear per-step output head.
#[derive(Debug, Clone)]
pub struct Lstm {
    params: LstmParams,
    layouts: Vec<LayerLayout>,
    /// Flat parameters: all layers, then output head (`H` weights + bias).
    theta: Vec<f64>,
    out_w_off: usize,
    n_features: usize,
    scaler: Option<StandardScaler>,
}

impl Lstm {
    /// Creates an untrained LSTM.
    pub fn new(params: LstmParams) -> Self {
        Lstm {
            params,
            layouts: Vec::new(),
            theta: Vec::new(),
            out_w_off: 0,
            n_features: 0,
            scaler: None,
        }
    }

    /// Total number of trainable parameters (0 before fit).
    pub fn n_params(&self) -> usize {
        self.theta.len()
    }

    fn init(&mut self, n_features: usize, rng: &mut impl Rng) {
        self.n_features = n_features;
        self.layouts.clear();
        let h = self.params.hidden;
        let mut off = 0;
        for l in 0..self.params.layers.max(1) {
            let in_dim = if l == 0 { n_features } else { h };
            let layout = LayerLayout {
                in_dim,
                hidden: h,
                wx: off,
                wh: off + 4 * h * in_dim,
                b: off + 4 * h * (in_dim + h),
            };
            off += layout.size();
            self.layouts.push(layout);
        }
        self.out_w_off = off;
        let total = off + h + 1;
        let mut theta = vec![0.0; total];
        for layout in &self.layouts {
            let scale = (1.0 / layout.in_dim as f64).sqrt();
            for w in &mut theta[layout.wx..layout.wh] {
                *w = (rng.gen::<f64>() * 2.0 - 1.0) * scale;
            }
            let scale = (1.0 / layout.hidden as f64).sqrt();
            for w in &mut theta[layout.wh..layout.b] {
                *w = (rng.gen::<f64>() * 2.0 - 1.0) * scale;
            }
            // Forget-gate bias starts at 1.0 (standard trick for gradient
            // flow); other gate biases start at 0.
            for j in 0..layout.hidden {
                theta[layout.b + layout.hidden + j] = 1.0;
            }
        }
        let scale = (1.0 / h as f64).sqrt();
        for w in &mut theta[self.out_w_off..self.out_w_off + h] {
            *w = (rng.gen::<f64>() * 2.0 - 1.0) * scale;
        }
        self.theta = theta;
    }

    /// Runs the stack over `steps`, returning per-layer traces and per-step
    /// predictions.
    fn forward(&self, steps: &[Vec<f64>]) -> (Vec<LayerTrace>, Vec<f64>) {
        let h_dim = self.params.hidden;
        let mut traces: Vec<LayerTrace> = vec![LayerTrace::default(); self.layouts.len()];
        let mut preds = Vec::with_capacity(steps.len());
        let mut h_prev = vec![vec![0.0; h_dim]; self.layouts.len()];
        let mut c_prev = vec![vec![0.0; h_dim]; self.layouts.len()];
        for step in steps {
            let mut input = step.clone();
            for (li, layout) in self.layouts.iter().enumerate() {
                let mut gates = vec![0.0; 4 * h_dim];
                for (r, gate) in gates.iter_mut().enumerate() {
                    let mut s = self.theta[layout.b + r];
                    let wx_row = layout.wx + r * layout.in_dim;
                    for (k, xv) in input.iter().enumerate() {
                        s += self.theta[wx_row + k] * xv;
                    }
                    let wh_row = layout.wh + r * h_dim;
                    for (k, hv) in h_prev[li].iter().enumerate() {
                        s += self.theta[wh_row + k] * hv;
                    }
                    *gate = s;
                }
                let i: Vec<f64> = gates[..h_dim].iter().map(|&v| sigmoid(v)).collect();
                let f: Vec<f64> = gates[h_dim..2 * h_dim].iter().map(|&v| sigmoid(v)).collect();
                let g: Vec<f64> = gates[2 * h_dim..3 * h_dim].iter().map(|&v| v.tanh()).collect();
                let o: Vec<f64> = gates[3 * h_dim..].iter().map(|&v| sigmoid(v)).collect();
                let c: Vec<f64> = (0..h_dim)
                    .map(|j| f[j] * c_prev[li][j] + i[j] * g[j])
                    .collect();
                let tc: Vec<f64> = c.iter().map(|v| v.tanh()).collect();
                let h: Vec<f64> = (0..h_dim).map(|j| o[j] * tc[j]).collect();
                let t = &mut traces[li];
                t.x.push(input.clone());
                t.i.push(i);
                t.f.push(f);
                t.g.push(g);
                t.o.push(o);
                t.c.push(c.clone());
                t.tc.push(tc);
                t.h.push(h.clone());
                h_prev[li] = h.clone();
                c_prev[li] = c;
                input = h;
            }
            let out_w = &self.theta[self.out_w_off..self.out_w_off + h_dim];
            let out_b = self.theta[self.out_w_off + h_dim];
            let pred = out_b + out_w.iter().zip(&input).map(|(w, v)| w * v).sum::<f64>();
            preds.push(pred);
        }
        (traces, preds)
    }

    /// BPTT for one sequence; accumulates into `grad` and returns the mean
    /// squared error over the sequence.
    fn backward(
        &self,
        traces: &[LayerTrace],
        preds: &[f64],
        targets: &[f64],
        grad: &mut [f64],
    ) -> f64 {
        let h_dim = self.params.hidden;
        let n_layers = self.layouts.len();
        let steps = preds.len();
        let inv_t = 1.0 / steps as f64;
        let out_w = self.out_w_off;

        // dh[layer] carries gradient flowing into h_t of that layer from
        // the future; dc likewise for cell state.
        let mut dh_next = vec![vec![0.0; h_dim]; n_layers];
        let mut dc_next = vec![vec![0.0; h_dim]; n_layers];
        let mut sq_err = 0.0;
        for t in (0..steps).rev() {
            let err = preds[t] - targets[t];
            sq_err += err * err;
            let d_pred = 2.0 * err * inv_t;
            // Output head gradient and seed for the top layer's dh.
            let top = n_layers - 1;
            let h_top = &traces[top].h[t];
            grad[out_w + h_dim] += d_pred;
            let mut dh_from_above: Vec<f64> = (0..h_dim)
                .map(|j| {
                    grad[out_w + j] += d_pred * h_top[j];
                    d_pred * self.theta[out_w + j]
                })
                .collect();
            for li in (0..n_layers).rev() {
                let layout = self.layouts[li];
                let tr = &traces[li];
                let dh: Vec<f64> = (0..h_dim)
                    .map(|j| dh_from_above[j] + dh_next[li][j])
                    .collect();
                let (i, f, g, o) = (&tr.i[t], &tr.f[t], &tr.g[t], &tr.o[t]);
                let tc = &tr.tc[t];
                let c_prev: Vec<f64> = if t > 0 { tr.c[t - 1].clone() } else { vec![0.0; h_dim] };
                let mut da = vec![0.0; 4 * h_dim];
                let mut dc_prev = vec![0.0; h_dim];
                for j in 0..h_dim {
                    let do_ = dh[j] * tc[j];
                    let dc = dh[j] * o[j] * (1.0 - tc[j] * tc[j]) + dc_next[li][j];
                    let di = dc * g[j];
                    let dg = dc * i[j];
                    let df = dc * c_prev[j];
                    dc_prev[j] = dc * f[j];
                    da[j] = di * i[j] * (1.0 - i[j]);
                    da[h_dim + j] = df * f[j] * (1.0 - f[j]);
                    da[2 * h_dim + j] = dg * (1.0 - g[j] * g[j]);
                    da[3 * h_dim + j] = do_ * o[j] * (1.0 - o[j]);
                }
                dc_next[li] = dc_prev;
                // Parameter gradients and downstream gradients.
                let x = &tr.x[t];
                let h_prev: Vec<f64> =
                    if t > 0 { tr.h[t - 1].clone() } else { vec![0.0; h_dim] };
                let mut dx = vec![0.0; layout.in_dim];
                let mut dh_prev = vec![0.0; h_dim];
                for (r, &d) in da.iter().enumerate() {
                    if d == 0.0 {
                        continue;
                    }
                    grad[layout.b + r] += d;
                    let wx_row = layout.wx + r * layout.in_dim;
                    for (k, xv) in x.iter().enumerate() {
                        grad[wx_row + k] += d * xv;
                        dx[k] += d * self.theta[wx_row + k];
                    }
                    let wh_row = layout.wh + r * h_dim;
                    for (k, hv) in h_prev.iter().enumerate() {
                        grad[wh_row + k] += d * hv;
                        dh_prev[k] += d * self.theta[wh_row + k];
                    }
                }
                dh_next[li] = dh_prev;
                // dx feeds the layer below as part of its dh at this step.
                dh_from_above = dx;
            }
        }
        sq_err * inv_t
    }

    fn eval(&self, seqs: &[Sequence]) -> f64 {
        let mut total = 0.0;
        let mut n = 0usize;
        for s in seqs {
            let (_, preds) = self.forward(&s.steps);
            for (p, y) in preds.iter().zip(&s.targets) {
                total += (p - y) * (p - y);
            }
            n += s.len();
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }

    fn scale_sequences(&self, seqs: &[Sequence]) -> Vec<Sequence> {
        let scaler = self.scaler.as_ref().expect("scaler fitted");
        seqs.iter()
            .map(|s| Sequence {
                steps: s.steps.iter().map(|row| scaler.transform_row(row)).collect(),
                targets: s.targets.clone(),
            })
            .collect()
    }
}

impl SequenceRegressor for Lstm {
    fn fit_sequences(&mut self, train: &[Sequence], val: Option<&[Sequence]>) {
        assert!(!train.is_empty(), "cannot fit LSTM on no sequences");
        let n_features = train[0].n_features();
        assert!(
            train.iter().all(|s| s.n_features() == n_features && !s.is_empty()),
            "all training sequences must be non-empty with equal feature counts"
        );
        // Fit the scaler over every step of every sequence.
        let all_rows: Vec<Vec<f64>> =
            train.iter().flat_map(|s| s.steps.iter().cloned()).collect();
        let flat = Matrix::from_rows(&all_rows).expect("validated shapes");
        self.scaler = Some(StandardScaler::fit(&flat));

        let mut rng = rand::rngs::StdRng::seed_from_u64(self.params.seed);
        self.init(n_features, &mut rng);

        let train_scaled = self.scale_sequences(train);
        let val_scaled = val.map(|v| self.scale_sequences(v));

        let mut adam = Adam::new(self.theta.len(), self.params.lr, self.params.clip_norm);
        let mut order: Vec<usize> = (0..train_scaled.len()).collect();
        let mut grad = vec![0.0; self.theta.len()];
        let mut best = self.theta.clone();
        let mut best_loss = f64::INFINITY;
        let mut stale = 0;
        for _epoch in 0..self.params.max_epochs {
            order.shuffle(&mut rng);
            for &si in &order {
                let seq = &train_scaled[si];
                let (traces, preds) = self.forward(&seq.steps);
                grad.iter_mut().for_each(|g| *g = 0.0);
                self.backward(&traces, &preds, &seq.targets, &mut grad);
                adam.step(&mut self.theta, &grad);
            }
            let loss = match &val_scaled {
                Some(v) => self.eval(v),
                None => self.eval(&train_scaled),
            };
            if loss.is_finite() && loss + 1e-12 < best_loss {
                best_loss = loss;
                best.copy_from_slice(&self.theta);
                stale = 0;
            } else {
                stale += 1;
                if stale >= self.params.patience {
                    break;
                }
            }
        }
        self.theta = best;
    }

    fn predict_sequence(&self, steps: &[Vec<f64>]) -> Vec<f64> {
        let scaler = self.scaler.as_ref().expect("Lstm::predict_sequence called before fit");
        let scaled: Vec<Vec<f64>> = steps.iter().map(|r| scaler.transform_row(r)).collect();
        self.forward(&scaled).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Target depends on the running mean of the input — requires state.
    fn stateful_sequences(n_seq: usize, len: usize) -> Vec<Sequence> {
        (0..n_seq)
            .map(|s| {
                let mut acc = 0.0;
                let mut steps = Vec::new();
                let mut targets = Vec::new();
                for t in 0..len {
                    let x = ((s * 7 + t) as f64 * 0.61).sin();
                    acc = 0.8 * acc + 0.2 * x;
                    steps.push(vec![x]);
                    targets.push(acc);
                }
                Sequence::new(steps, targets).unwrap()
            })
            .collect()
    }

    #[test]
    fn learns_stateful_target() {
        let seqs = stateful_sequences(6, 25);
        let mut m = Lstm::new(LstmParams {
            layers: 1,
            hidden: 12,
            max_epochs: 300,
            clip_norm: None,
            lr: 1e-2,
            ..LstmParams::default()
        });
        m.fit_sequences(&seqs, None);
        let mut total = 0.0;
        let mut n = 0;
        for s in &seqs {
            let preds = m.predict_sequence(&s.steps);
            for (p, y) in preds.iter().zip(&s.targets) {
                total += (p - y) * (p - y);
                n += 1;
            }
        }
        let err = total / n as f64;
        assert!(err < 0.02, "mse {err}");
    }

    #[test]
    fn stacked_layers_run() {
        let seqs = stateful_sequences(3, 10);
        let mut m = Lstm::new(LstmParams {
            layers: 2,
            hidden: 6,
            max_epochs: 10,
            ..LstmParams::default()
        });
        m.fit_sequences(&seqs, None);
        let preds = m.predict_sequence(&seqs[0].steps);
        assert_eq!(preds.len(), 10);
        assert!(preds.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn deterministic_per_seed() {
        let seqs = stateful_sequences(3, 8);
        let params = LstmParams { hidden: 4, max_epochs: 5, ..LstmParams::default() };
        let mut a = Lstm::new(params);
        let mut b = Lstm::new(params);
        a.fit_sequences(&seqs, None);
        b.fit_sequences(&seqs, None);
        assert_eq!(a.predict_sequence(&seqs[0].steps), b.predict_sequence(&seqs[0].steps));
    }

    #[test]
    fn early_stopping_with_validation() {
        let seqs = stateful_sequences(6, 15);
        let (train, val) = seqs.split_at(4);
        let mut m = Lstm::new(LstmParams {
            hidden: 8,
            max_epochs: 120,
            patience: 15,
            ..LstmParams::default()
        });
        m.fit_sequences(train, Some(val));
        assert!(m.eval(&m.scale_sequences(val)).is_finite());
    }
}

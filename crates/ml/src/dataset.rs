//! Supervised regression datasets (feature rows and time-series sequences).
//!
//! [`Dataset`] pairs a row-major feature [`Matrix`] with one
//! target per row and is what every row-oriented engine
//! ([`crate::Regressor`]) trains on; [`Sequence`] is the per-step analogue
//! consumed by [`crate::Lstm`]. Construction validates shape (ragged rows
//! and row/target mismatches are errors, not panics), and
//! [`Dataset::split`] provides the deterministic shuffled train/validation
//! partition used for early stopping.
//!
//! ```
//! use perfbug_ml::Dataset;
//!
//! let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, (i * i) as f64]).collect();
//! let y: Vec<f64> = (0..10).map(|i| 2.0 * i as f64).collect();
//! let data = Dataset::from_rows(&rows, &y).unwrap();
//! assert_eq!((data.len(), data.n_features()), (10, 2));
//!
//! let (train, val) = data.split(0.3, 42); // deterministic per seed
//! assert_eq!(train.len() + val.len(), data.len());
//! assert_eq!(val.len(), 3);
//!
//! // Malformed input is rejected, never silently truncated.
//! assert!(Dataset::from_rows(&[vec![1.0]], &[1.0, 2.0]).is_err());
//! ```

use std::error::Error;
use std::fmt;

use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::matrix::Matrix;

/// Error building a [`Dataset`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// Feature rows had inconsistent lengths.
    RaggedRows,
    /// The number of rows and targets differ.
    LengthMismatch {
        /// Number of feature rows supplied.
        rows: usize,
        /// Number of target values supplied.
        targets: usize,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::RaggedRows => write!(f, "feature rows have inconsistent lengths"),
            DatasetError::LengthMismatch { rows, targets } => {
                write!(f, "{rows} feature rows but {targets} targets")
            }
        }
    }
}

impl Error for DatasetError {}

/// A supervised regression dataset: one target value per feature row.
#[derive(Debug, Clone)]
pub struct Dataset {
    x: Matrix,
    y: Vec<f64>,
}

impl Dataset {
    /// Builds a dataset from feature rows and targets.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::RaggedRows`] when rows have inconsistent
    /// lengths and [`DatasetError::LengthMismatch`] when `rows.len() !=
    /// targets.len()`.
    pub fn from_rows(rows: &[Vec<f64>], targets: &[f64]) -> Result<Self, DatasetError> {
        if rows.len() != targets.len() {
            return Err(DatasetError::LengthMismatch {
                rows: rows.len(),
                targets: targets.len(),
            });
        }
        let x = Matrix::from_rows(rows).ok_or(DatasetError::RaggedRows)?;
        Ok(Dataset {
            x,
            y: targets.to_vec(),
        })
    }

    /// Builds a dataset from an existing matrix and targets.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::LengthMismatch`] when the row count of `x`
    /// differs from `y.len()`.
    pub fn new(x: Matrix, y: Vec<f64>) -> Result<Self, DatasetError> {
        if x.rows() != y.len() {
            return Err(DatasetError::LengthMismatch {
                rows: x.rows(),
                targets: y.len(),
            });
        }
        Ok(Dataset { x, y })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of features per sample.
    pub fn n_features(&self) -> usize {
        self.x.cols()
    }

    /// The feature matrix.
    pub fn x(&self) -> &Matrix {
        &self.x
    }

    /// The target vector.
    pub fn y(&self) -> &[f64] {
        &self.y
    }

    /// Returns the sample at `i` as `(features, target)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn sample(&self, i: usize) -> (&[f64], f64) {
        (self.x.row(i), self.y[i])
    }

    /// Returns a new dataset restricted to the given sample indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        Dataset {
            x: self.x.select_rows(indices),
            y: indices.iter().map(|&i| self.y[i]).collect(),
        }
    }

    /// Deterministically shuffles and splits into `(train, validation)`
    /// where the validation part holds `val_fraction` of the samples
    /// (rounded down, at least one sample kept on each side when possible).
    pub fn split(&self, val_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        let mut indices: Vec<usize> = (0..self.len()).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        indices.shuffle(&mut rng);
        let mut n_val = ((self.len() as f64) * val_fraction) as usize;
        if self.len() >= 2 {
            n_val = n_val.clamp(1, self.len() - 1);
        }
        let (val_idx, train_idx) = indices.split_at(n_val);
        (self.select(train_idx), self.select(val_idx))
    }
}

/// A time-series training sequence: per-step feature vectors and targets.
///
/// Used by sequence models ([`crate::Lstm`]): one probe run on one
/// microarchitecture yields one sequence whose steps are the sampled
/// performance-counter windows.
#[derive(Debug, Clone)]
pub struct Sequence {
    /// Feature vector per time step.
    pub steps: Vec<Vec<f64>>,
    /// Target value per time step (same length as `steps`).
    pub targets: Vec<f64>,
}

impl Sequence {
    /// Builds a sequence, validating that steps and targets align and all
    /// step vectors have equal length.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::LengthMismatch`] or
    /// [`DatasetError::RaggedRows`] on malformed input.
    pub fn new(steps: Vec<Vec<f64>>, targets: Vec<f64>) -> Result<Self, DatasetError> {
        if steps.len() != targets.len() {
            return Err(DatasetError::LengthMismatch {
                rows: steps.len(),
                targets: targets.len(),
            });
        }
        let dim = steps.first().map_or(0, Vec::len);
        if steps.iter().any(|s| s.len() != dim) {
            return Err(DatasetError::RaggedRows);
        }
        Ok(Sequence { steps, targets })
    }

    /// Number of time steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the sequence holds no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Feature dimensionality per step (0 for an empty sequence).
    pub fn n_features(&self) -> usize {
        self.steps.first().map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, (i * i) as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        Dataset::from_rows(&rows, &y).unwrap()
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let err = Dataset::from_rows(&[vec![1.0]], &[1.0, 2.0]).unwrap_err();
        assert_eq!(
            err,
            DatasetError::LengthMismatch {
                rows: 1,
                targets: 2
            }
        );
    }

    #[test]
    fn split_partitions_all_samples() {
        let d = toy();
        let (train, val) = d.split(0.3, 7);
        assert_eq!(train.len() + val.len(), d.len());
        assert_eq!(val.len(), 3);
        assert_eq!(train.n_features(), 2);
    }

    #[test]
    fn split_is_deterministic() {
        let d = toy();
        let (a, _) = d.split(0.3, 42);
        let (b, _) = d.split(0.3, 42);
        assert_eq!(a.y(), b.y());
    }

    #[test]
    fn split_keeps_at_least_one_sample_per_side() {
        let d = toy();
        let (train, val) = d.split(0.0, 1);
        assert_eq!(val.len(), 1);
        assert_eq!(train.len(), 9);
        let (train, val) = d.split(1.0, 1);
        assert_eq!(train.len(), 1);
        assert_eq!(val.len(), 9);
    }

    #[test]
    fn sequence_validation() {
        assert!(Sequence::new(vec![vec![1.0], vec![2.0]], vec![0.1, 0.2]).is_ok());
        assert!(Sequence::new(vec![vec![1.0]], vec![0.1, 0.2]).is_err());
        assert!(Sequence::new(vec![vec![1.0], vec![2.0, 3.0]], vec![0.1, 0.2]).is_err());
    }

    #[test]
    fn select_picks_rows() {
        let d = toy();
        let s = d.select(&[9, 0]);
        assert_eq!(s.y(), &[9.0, 0.0]);
        assert_eq!(s.sample(0).0, &[9.0, 81.0]);
    }
}

//! Gradient-boosted regression trees (XGBoost-style boosting, LightGBM-style
//! histogram split finding).
//!
//! The paper's best stage-1 engine is "GBT-250" (250 boosted trees via
//! XGBoost). This module implements the same second-order boosting recipe:
//! per-round gradients/hessians of the squared loss, greedy splits
//! maximising the regularised gain, leaf weights `-G/(H+lambda)` and
//! shrinkage.
//!
//! Two split-finding strategies are available behind
//! [`GbtParams::split_strategy`]:
//!
//! * [`SplitStrategy::Exact`] — the classic exact greedy algorithm: at every
//!   node, every feature column is gathered and sorted and every boundary
//!   between adjacent distinct values is a candidate. `O(rows · log rows ·
//!   features)` *per node*, which dominates training at paper scale.
//! * [`SplitStrategy::Histogram`] (the default) — feature values are
//!   quantised once per fit into at most `max_bins` bins per feature
//!   ([`BinnedDataset`]: quantile cut points, `u8` bin codes stored
//!   column-major). Each node accumulates one (grad-sum, hess-sum, count)
//!   histogram per feature — in parallel across features for large nodes —
//!   and only bin boundaries are split candidates. A node's sibling
//!   histogram is derived with the parent-minus-child *subtraction trick*,
//!   so only the smaller child is ever scanned. Thresholds are real cut
//!   values, so trained trees are identical in form to exact trees and
//!   [`Regressor::predict_row`] is strategy-agnostic.
//!
//! When a feature has at most `max_bins` distinct values the binning is
//! lossless: cut points are the midpoints between adjacent distinct values —
//! the exact splitter's threshold formula — so histogram training considers
//! the same candidate *partitions* as exact training and grows the same row
//! splits (inside a child node's value gaps the chosen threshold may sit at
//! a different — equally valid — boundary; see the parity suite in
//! `tests/gbt_parity.rs`). A constant feature produces zero cut points and
//! can never be selected for a split.
//!
//! ```
//! use perfbug_ml::{Dataset, Gbt, GbtParams, Regressor, SplitStrategy};
//!
//! let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 10.0]).collect();
//! let y: Vec<f64> = rows.iter().map(|r| if r[0] < 2.5 { -1.0 } else { 2.0 }).collect();
//! let data = Dataset::from_rows(&rows, &y).unwrap();
//!
//! // Histogram split finding is the default...
//! let mut model = Gbt::new(GbtParams { n_trees: 60, ..GbtParams::default() });
//! model.fit(&data, None);
//! assert!((model.predict_row(&[0.5]) - -1.0).abs() < 0.1);
//!
//! // ...and the exact splitter stays available behind the same knob.
//! let mut exact = Gbt::new(GbtParams {
//!     n_trees: 60,
//!     split_strategy: SplitStrategy::Exact,
//!     ..GbtParams::default()
//! });
//! exact.fit(&data, None);
//! assert!((exact.predict_row(&[4.0]) - 2.0).abs() < 0.1);
//! ```

use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::Regressor;

/// How split candidates are enumerated while growing trees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitStrategy {
    /// Exact greedy split finding: sort every feature column at every node
    /// and consider every boundary between adjacent distinct values.
    Exact,
    /// Histogram split finding: quantise each feature into at most
    /// `max_bins` bins once per fit and consider only bin boundaries,
    /// with per-node gradient histograms and the subtraction trick.
    Histogram {
        /// Upper bound on bins per feature (clamped to `2..=256`; bin
        /// codes are stored as `u8`). 255 matches LightGBM's default.
        max_bins: u16,
    },
}

impl Default for SplitStrategy {
    fn default() -> Self {
        SplitStrategy::Histogram { max_bins: 255 }
    }
}

/// Hyper-parameters for [`Gbt`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbtParams {
    /// Number of boosted trees (the paper evaluates 150 and 250).
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// L2 regularisation on leaf weights (XGBoost's `lambda`).
    pub lambda: f64,
    /// Minimum gain required to split (XGBoost's `gamma`).
    pub gamma: f64,
    /// Minimum sum of hessians in a child (XGBoost's `min_child_weight`).
    pub min_child_weight: f64,
    /// Fraction of rows sampled per tree (1.0 disables subsampling).
    pub subsample: f64,
    /// Seed for row subsampling.
    pub seed: u64,
    /// Split-finding strategy (histogram by default; see [`SplitStrategy`]).
    pub split_strategy: SplitStrategy,
}

impl Default for GbtParams {
    fn default() -> Self {
        GbtParams {
            n_trees: 250,
            max_depth: 4,
            learning_rate: 0.1,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
            subsample: 1.0,
            seed: 0,
            split_strategy: SplitStrategy::default(),
        }
    }
}

// --------------------------------------------------------------------------
// Binned dataset
// --------------------------------------------------------------------------

/// Per-node, per-feature, per-bin gradient statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct HistBin {
    grad: f64,
    hess: f64,
    count: u32,
}

/// Feature-parallel histogram construction kicks in above this
/// `rows x features` work size; below it, thread-spawn overhead dominates
/// the accumulation loop (tree nodes shrink geometrically with depth, so
/// deep nodes always stay serial).
const HIST_PARALLEL_WORK: usize = 1 << 17;

/// A dataset quantised for histogram split finding: per-feature quantile
/// cut points and `u8` bin codes stored column-major.
///
/// Built once per [`Gbt::fit`] and reused across every tree and boosting
/// round. Bin `b` of a feature holds the values `v` with
/// `cuts[b-1] <= v < cuts[b]`, so a split "code ≤ b" is exactly the tree
/// predicate `v < cuts[b]` — thresholds in trained trees are real feature
/// values, never bin indices.
///
/// When a feature has at most `max_bins` distinct values, every distinct
/// value receives its own bin and the cut points are the midpoints between
/// adjacent distinct values (the exact splitter's candidate formula);
/// otherwise cut points are chosen at (approximately) equal-frequency
/// quantiles of the column. A constant feature produces **zero** cut
/// points: it occupies a single bin and can never be selected for a split.
///
/// ```
/// use perfbug_ml::{BinnedDataset, Dataset};
///
/// let rows: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64, 7.0]).collect();
/// let y = vec![0.0; 8];
/// let binned = BinnedDataset::from_dataset(&Dataset::from_rows(&rows, &y).unwrap(), 255);
/// assert_eq!(binned.n_bins(0), 8); // 8 distinct values, lossless binning
/// assert_eq!(binned.cuts(0)[0], 0.5); // midpoints between adjacent values
/// assert_eq!(binned.n_bins(1), 1); // constant column: zero cuts, one bin
/// assert!(binned.cuts(1).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct BinnedDataset {
    n_rows: usize,
    /// Ascending cut points per feature; `cuts[f].len() + 1` bins.
    cuts: Vec<Vec<f64>>,
    /// Column-major bin codes: `codes[f * n_rows + r]`.
    codes: Vec<u8>,
    /// Flat histogram offsets per feature (`n_features + 1` entries).
    offsets: Vec<usize>,
}

impl BinnedDataset {
    /// Quantises `data` into at most `max_bins` bins per feature
    /// (`max_bins` is clamped to `2..=256`).
    pub fn from_dataset(data: &Dataset, max_bins: u16) -> Self {
        let max_bins = (max_bins as usize).clamp(2, 256);
        let n_rows = data.len();
        let n_features = data.n_features();
        let mut cuts = Vec::with_capacity(n_features);
        let mut codes = vec![0u8; n_features * n_rows];
        let mut offsets = Vec::with_capacity(n_features + 1);
        offsets.push(0);
        let mut column = Vec::with_capacity(n_rows);
        for f in 0..n_features {
            column.clear();
            column.extend((0..n_rows).map(|r| data.sample(r).0[f]));
            column.sort_by(f64::total_cmp);
            let feature_cuts = quantile_cuts(&column, max_bins);
            let col_codes = &mut codes[f * n_rows..(f + 1) * n_rows];
            for (r, code) in col_codes.iter_mut().enumerate() {
                let v = data.sample(r).0[f];
                *code = feature_cuts.partition_point(|&c| c <= v) as u8;
            }
            offsets.push(offsets[f] + feature_cuts.len() + 1);
            cuts.push(feature_cuts);
        }
        BinnedDataset {
            n_rows,
            cuts,
            codes,
            offsets,
        }
    }

    /// Number of samples.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.cuts.len()
    }

    /// Number of bins of `feature` (1 for a constant feature).
    ///
    /// # Panics
    ///
    /// Panics if `feature` is out of bounds.
    pub fn n_bins(&self, feature: usize) -> usize {
        self.cuts[feature].len() + 1
    }

    /// The ascending cut points of `feature` (empty for a constant
    /// feature). Bin `b` holds values in `[cuts[b-1], cuts[b])`.
    ///
    /// # Panics
    ///
    /// Panics if `feature` is out of bounds.
    pub fn cuts(&self, feature: usize) -> &[f64] {
        &self.cuts[feature]
    }

    /// Total histogram slots across all features.
    fn total_bins(&self) -> usize {
        *self.offsets.last().unwrap_or(&0)
    }

    /// The bin codes of one feature column.
    fn feature_codes(&self, feature: usize) -> &[u8] {
        &self.codes[feature * self.n_rows..(feature + 1) * self.n_rows]
    }

    /// Accumulates the (grad, hess, count) histogram of one feature over
    /// `rows` into `bins` (pre-zeroed, `n_bins(feature)` long).
    fn accumulate_feature(
        &self,
        feature: usize,
        rows: &[u32],
        grad: &[f64],
        hess: &[f64],
        bins: &mut [HistBin],
    ) {
        let col = self.feature_codes(feature);
        for &r in rows {
            let r = r as usize;
            let bin = &mut bins[col[r] as usize];
            bin.grad += grad[r];
            bin.hess += hess[r];
            bin.count += 1;
        }
    }

    /// Builds the full per-feature histogram of one node into `hist`
    /// (length [`Self::total_bins`]), feature-parallel across up to
    /// `threads` workers when the node is large enough to amortise the
    /// spawns. Each feature is accumulated by exactly one thread in row
    /// order, so the result is bit-identical for any thread count.
    fn build_histogram(
        &self,
        rows: &[u32],
        grad: &[f64],
        hess: &[f64],
        hist: &mut [HistBin],
        threads: usize,
    ) {
        debug_assert_eq!(hist.len(), self.total_bins());
        hist.fill(HistBin::default());
        let n_features = self.n_features();
        let threads = threads.clamp(1, n_features.max(1));
        if threads == 1 || rows.len().saturating_mul(n_features) < HIST_PARALLEL_WORK {
            for f in 0..n_features {
                let (lo, hi) = (self.offsets[f], self.offsets[f + 1]);
                self.accumulate_feature(f, rows, grad, hess, &mut hist[lo..hi]);
            }
            return;
        }
        std::thread::scope(|scope| {
            let mut rest = hist;
            let mut f_start = 0;
            for t in 0..threads {
                // Near-equal contiguous feature chunks.
                let f_end = f_start + (n_features - f_start) / (threads - t);
                let width = self.offsets[f_end] - self.offsets[f_start];
                let (chunk, tail) = rest.split_at_mut(width);
                rest = tail;
                scope.spawn(move || {
                    let mut bins = chunk;
                    for f in f_start..f_end {
                        let width = self.offsets[f + 1] - self.offsets[f];
                        let (head, tail) = bins.split_at_mut(width);
                        self.accumulate_feature(f, rows, grad, hess, head);
                        bins = tail;
                    }
                });
                f_start = f_end;
            }
        });
    }
}

/// Chooses the cut points of one feature from its sorted column. Lossless
/// midpoint cuts when the column has at most `max_bins` distinct values,
/// (approximately) equal-frequency quantile cuts otherwise. A constant
/// column yields no cuts.
fn quantile_cuts(sorted: &[f64], max_bins: usize) -> Vec<f64> {
    // Run-length encode the distinct values.
    let mut distinct: Vec<(f64, usize)> = Vec::new();
    for &v in sorted {
        match distinct.last_mut() {
            Some((last, count)) if *last == v => *count += 1,
            _ => distinct.push((v, 1)),
        }
    }
    if distinct.len() <= 1 {
        return Vec::new();
    }
    let mut cuts = Vec::with_capacity(distinct.len().min(max_bins) - 1);
    if distinct.len() <= max_bins {
        // One bin per distinct value: cut points are the exact splitter's
        // midpoint thresholds, making the binning lossless.
        for pair in distinct.windows(2) {
            cuts.push((pair[0].0 + pair[1].0) / 2.0);
        }
        return cuts;
    }
    // Greedy equal-frequency quantiles: emit a cut whenever the cumulative
    // row count passes the next multiple of n/max_bins. A value heavier
    // than one whole stride additionally forces cuts on both of its
    // boundaries (its own bin, LightGBM-style) — without that, a dominant
    // value swallows every target and a feature the exact splitter can
    // split ends up with no cuts at all. Cuts stay strictly increasing
    // and are capped at max_bins - 1 so codes always fit in a u8.
    let stride = sorted.len() as f64 / max_bins as f64;
    let mut cum = 0usize;
    let mut next_target = stride;
    for pair in distinct.windows(2) {
        cum += pair[0].1;
        let heavy_boundary = pair[0].1 as f64 >= stride || pair[1].1 as f64 >= stride;
        if (cum as f64) >= next_target || heavy_boundary {
            cuts.push((pair[0].0 + pair[1].0) / 2.0);
            if cuts.len() == max_bins - 1 {
                break;
            }
            while (cum as f64) >= next_target {
                next_target += stride;
            }
        }
    }
    cuts
}

// --------------------------------------------------------------------------
// Trees
// --------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        weight: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Rows with `x[feature] < threshold` go left.
        left: usize,
        right: usize,
    },
}

/// One regression tree stored as a flat arena of nodes.
#[derive(Debug, Clone)]
struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn predict(&self, x: &[f64]) -> f64 {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { weight } => return *weight,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if x[*feature] < *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// Gradient-boosted tree ensemble for regression (squared loss).
#[derive(Debug, Clone)]
pub struct Gbt {
    params: GbtParams,
    hist_threads: Option<usize>,
    base_score: f64,
    trees: Vec<Tree>,
    n_features: usize,
}

impl Gbt {
    /// Creates an untrained ensemble.
    pub fn new(params: GbtParams) -> Self {
        Gbt {
            params,
            hist_threads: None,
            base_score: 0.0,
            trees: Vec::new(),
            n_features: 0,
        }
    }

    /// Caps the worker threads used for feature-parallel histogram
    /// construction (default: `available_parallelism`). Training output
    /// is bit-identical for any value — each feature's histogram is
    /// accumulated by exactly one thread in row order — so this is purely
    /// a scheduling knob: callers whose fits already run inside a
    /// saturated worker pool (stage-1 training under the collection
    /// engine) pass 1 to avoid spawning nested threads per tree node.
    /// Not part of [`GbtParams`] on purpose: thread counts are an
    /// execution detail, not model/corpus identity.
    pub fn with_hist_threads(mut self, threads: usize) -> Self {
        self.hist_threads = Some(threads.max(1));
        self
    }

    /// Number of trees actually grown.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Every split's `(feature, threshold)` across all trees, in tree
    /// order (pre-order within each tree). Introspection for feature
    /// audits and the exact-vs-histogram parity suite.
    pub fn split_thresholds(&self) -> Vec<(usize, f64)> {
        self.trees
            .iter()
            .flat_map(|t| &t.nodes)
            .filter_map(|n| match n {
                Node::Split {
                    feature, threshold, ..
                } => Some((*feature, *threshold)),
                Node::Leaf { .. } => None,
            })
            .collect()
    }

    /// Builds one tree on the given rows against gradients/hessians with
    /// the exact greedy splitter; returns the tree.
    fn build_tree(&self, data: &Dataset, rows: &[usize], grad: &[f64], hess: &[f64]) -> Tree {
        let mut tree = Tree { nodes: Vec::new() };
        self.grow(&mut tree, data, rows.to_vec(), grad, hess, 0);
        tree
    }

    /// Recursively grows `tree` with exact splits, returning the index of
    /// the created node.
    fn grow(
        &self,
        tree: &mut Tree,
        data: &Dataset,
        rows: Vec<usize>,
        grad: &[f64],
        hess: &[f64],
        depth: usize,
    ) -> usize {
        let g_sum: f64 = rows.iter().map(|&r| grad[r]).sum();
        let h_sum: f64 = rows.iter().map(|&r| hess[r]).sum();
        let leaf = |tree: &mut Tree| {
            let weight = -g_sum / (h_sum + self.params.lambda);
            tree.nodes.push(Node::Leaf { weight });
            tree.nodes.len() - 1
        };
        if depth >= self.params.max_depth || rows.len() < 2 {
            return leaf(tree);
        }

        // Exact greedy: best split over every feature.
        let parent_score = g_sum * g_sum / (h_sum + self.params.lambda);
        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
        let mut sorted: Vec<(f64, f64, f64)> = Vec::with_capacity(rows.len());
        for feature in 0..data.n_features() {
            sorted.clear();
            for &r in &rows {
                sorted.push((data.sample(r).0[feature], grad[r], hess[r]));
            }
            sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            let mut gl = 0.0;
            let mut hl = 0.0;
            for i in 0..sorted.len() - 1 {
                gl += sorted[i].1;
                hl += sorted[i].2;
                if sorted[i].0 == sorted[i + 1].0 {
                    continue; // cannot split between equal values
                }
                let gr = g_sum - gl;
                let hr = h_sum - hl;
                if hl < self.params.min_child_weight || hr < self.params.min_child_weight {
                    continue;
                }
                let gain = 0.5
                    * (gl * gl / (hl + self.params.lambda) + gr * gr / (hr + self.params.lambda)
                        - parent_score)
                    - self.params.gamma;
                if gain > 0.0 && best.is_none_or(|(g, _, _)| gain > g) {
                    let threshold = (sorted[i].0 + sorted[i + 1].0) / 2.0;
                    best = Some((gain, feature, threshold));
                }
            }
        }

        match best {
            None => leaf(tree),
            Some((_, feature, threshold)) => {
                let (left_rows, right_rows): (Vec<usize>, Vec<usize>) = rows
                    .into_iter()
                    .partition(|&r| data.sample(r).0[feature] < threshold);
                // Reserve our slot before children are pushed.
                tree.nodes.push(Node::Leaf { weight: 0.0 });
                let me = tree.nodes.len() - 1;
                let left = self.grow(tree, data, left_rows, grad, hess, depth + 1);
                let right = self.grow(tree, data, right_rows, grad, hess, depth + 1);
                tree.nodes[me] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                me
            }
        }
    }

    /// Builds one tree with histogram split finding.
    fn build_tree_hist(
        &self,
        binned: &BinnedDataset,
        rows: &[usize],
        grad: &[f64],
        hess: &[f64],
        threads: usize,
    ) -> Tree {
        let rows: Vec<u32> = rows.iter().map(|&r| r as u32).collect();
        let mut hist = vec![HistBin::default(); binned.total_bins()];
        binned.build_histogram(&rows, grad, hess, &mut hist, threads);
        let mut tree = Tree { nodes: Vec::new() };
        self.grow_hist(&mut tree, binned, rows, hist, grad, hess, 0, threads);
        tree
    }

    /// Recursively grows `tree` from per-feature histograms. `hist` is the
    /// node's own histogram (consumed: the larger child's histogram is
    /// derived from it in place via the subtraction trick).
    #[allow(clippy::too_many_arguments)]
    fn grow_hist(
        &self,
        tree: &mut Tree,
        binned: &BinnedDataset,
        rows: Vec<u32>,
        hist: Vec<HistBin>,
        grad: &[f64],
        hess: &[f64],
        depth: usize,
        threads: usize,
    ) -> usize {
        // Node totals from the row list (not the bins): the same
        // summation order as the exact splitter, so leaf weights agree.
        let g_sum: f64 = rows.iter().map(|&r| grad[r as usize]).sum();
        let h_sum: f64 = rows.iter().map(|&r| hess[r as usize]).sum();
        let leaf = |tree: &mut Tree| {
            let weight = -g_sum / (h_sum + self.params.lambda);
            tree.nodes.push(Node::Leaf { weight });
            tree.nodes.len() - 1
        };
        if depth >= self.params.max_depth || rows.len() < 2 {
            return leaf(tree);
        }

        let parent_score = g_sum * g_sum / (h_sum + self.params.lambda);
        let total = rows.len() as u32;
        let mut best: Option<(f64, usize, usize)> = None; // (gain, feature, cut index)
        for feature in 0..binned.n_features() {
            let bins = &hist[binned.offsets[feature]..binned.offsets[feature + 1]];
            let mut gl = 0.0;
            let mut hl = 0.0;
            let mut nl = 0u32;
            // Candidate b splits between bin b and b+1: threshold cuts[b].
            for (b, bin) in bins[..binned.cuts[feature].len()].iter().enumerate() {
                gl += bin.grad;
                hl += bin.hess;
                nl += bin.count;
                if nl == 0 {
                    continue; // nothing on the left yet
                }
                if nl == total {
                    break; // nothing left on the right
                }
                if hl < self.params.min_child_weight || (h_sum - hl) < self.params.min_child_weight
                {
                    continue;
                }
                let gr = g_sum - gl;
                let hr = h_sum - hl;
                let gain = 0.5
                    * (gl * gl / (hl + self.params.lambda) + gr * gr / (hr + self.params.lambda)
                        - parent_score)
                    - self.params.gamma;
                if gain > 0.0 && best.is_none_or(|(g, _, _)| gain > g) {
                    best = Some((gain, feature, b));
                }
            }
        }

        match best {
            None => leaf(tree),
            Some((_, feature, cut_idx)) => {
                let threshold = binned.cuts[feature][cut_idx];
                let col = binned.feature_codes(feature);
                // code <= cut_idx  <=>  value < cuts[cut_idx]: the same
                // rows the trained tree will route left at inference.
                let (left_rows, right_rows): (Vec<u32>, Vec<u32>) = rows
                    .into_iter()
                    .partition(|&r| (col[r as usize] as usize) <= cut_idx);
                // Reserve our slot before children are pushed.
                tree.nodes.push(Node::Leaf { weight: 0.0 });
                let me = tree.nodes.len() - 1;
                // Subtraction trick: scan only the smaller child; the
                // larger child's histogram is parent minus sibling.
                let small_is_left = left_rows.len() <= right_rows.len();
                let small = if small_is_left {
                    &left_rows
                } else {
                    &right_rows
                };
                let mut small_hist = vec![HistBin::default(); hist.len()];
                binned.build_histogram(small, grad, hess, &mut small_hist, threads);
                let mut large_hist = hist;
                for (l, s) in large_hist.iter_mut().zip(&small_hist) {
                    l.grad -= s.grad;
                    l.hess -= s.hess;
                    l.count -= s.count;
                }
                let (left_hist, right_hist) = if small_is_left {
                    (small_hist, large_hist)
                } else {
                    (large_hist, small_hist)
                };
                let left = self.grow_hist(
                    tree,
                    binned,
                    left_rows,
                    left_hist,
                    grad,
                    hess,
                    depth + 1,
                    threads,
                );
                let right = self.grow_hist(
                    tree,
                    binned,
                    right_rows,
                    right_hist,
                    grad,
                    hess,
                    depth + 1,
                    threads,
                );
                tree.nodes[me] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                me
            }
        }
    }
}

impl Regressor for Gbt {
    fn fit(&mut self, train: &Dataset, _val: Option<&Dataset>) {
        assert!(!train.is_empty(), "cannot fit GBT on an empty dataset");
        assert!(
            train.len() <= u32::MAX as usize,
            "histogram GBT indexes rows as u32"
        );
        self.n_features = train.n_features();
        self.base_score = train.y().iter().sum::<f64>() / train.len() as f64;
        self.trees.clear();

        // Binning happens once per fit and is shared by every tree/round.
        let binned = match self.params.split_strategy {
            SplitStrategy::Histogram { max_bins } if self.params.max_depth > 0 => {
                Some(BinnedDataset::from_dataset(train, max_bins))
            }
            _ => None,
        };
        let threads = self
            .hist_threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, usize::from));

        let mut pred = vec![self.base_score; train.len()];
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.params.seed);
        let all_rows: Vec<usize> = (0..train.len()).collect();
        for _ in 0..self.params.n_trees {
            // Squared loss: grad = pred - y, hess = 1.
            let grad: Vec<f64> = pred.iter().zip(train.y()).map(|(p, y)| p - y).collect();
            let hess = vec![1.0; train.len()];
            let rows: Vec<usize> = if self.params.subsample < 1.0 {
                let k = ((train.len() as f64) * self.params.subsample).max(1.0) as usize;
                let mut shuffled = all_rows.clone();
                shuffled.shuffle(&mut rng);
                shuffled.truncate(k);
                shuffled
            } else {
                all_rows.clone()
            };
            let tree = match &binned {
                Some(b) => self.build_tree_hist(b, &rows, &grad, &hess, threads),
                None => self.build_tree(train, &rows, &grad, &hess),
            };
            for (i, p) in pred.iter_mut().enumerate() {
                *p += self.params.learning_rate * tree.predict(train.sample(i).0);
            }
            self.trees.push(tree);
        }
    }

    fn predict_row(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n_features, "feature count mismatch");
        self.base_score
            + self
                .trees
                .iter()
                .map(|t| self.params.learning_rate * t.predict(x))
                .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mse;

    fn wave_data(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64 * 6.0;
                vec![t, (t * 2.0).sin()]
            })
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0].sin() + 0.5 * r[1]).collect();
        Dataset::from_rows(&rows, &y).unwrap()
    }

    #[test]
    fn fits_nonlinear_function() {
        let data = wave_data(200);
        let mut m = Gbt::new(GbtParams {
            n_trees: 100,
            ..GbtParams::default()
        });
        m.fit(&data, None);
        let preds = m.predict(data.x());
        assert!(mse(&preds, data.y()) < 1e-3);
    }

    #[test]
    fn exact_strategy_fits_nonlinear_function() {
        let data = wave_data(200);
        let mut m = Gbt::new(GbtParams {
            n_trees: 100,
            split_strategy: SplitStrategy::Exact,
            ..GbtParams::default()
        });
        m.fit(&data, None);
        let preds = m.predict(data.x());
        assert!(mse(&preds, data.y()) < 1e-3);
    }

    #[test]
    fn more_trees_reduce_training_error() {
        let data = wave_data(200);
        let mut small = Gbt::new(GbtParams {
            n_trees: 5,
            ..GbtParams::default()
        });
        let mut large = Gbt::new(GbtParams {
            n_trees: 100,
            ..GbtParams::default()
        });
        small.fit(&data, None);
        large.fit(&data, None);
        let e_small = mse(&small.predict(data.x()), data.y());
        let e_large = mse(&large.predict(data.x()), data.y());
        assert!(e_large < e_small, "{e_large} !< {e_small}");
    }

    #[test]
    fn parallel_histogram_is_bit_identical_to_serial() {
        // Big enough that rows x features clears HIST_PARALLEL_WORK, so a
        // multi-thread call actually takes the scoped feature-parallel
        // path (the container running the suite may report a single
        // hardware thread, which would otherwise skip it).
        let (n, f) = (4096, 32);
        assert!(n * f >= HIST_PARALLEL_WORK);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..f).map(|j| ((i * (j + 2)) % 97) as f64 * 0.25).collect())
            .collect();
        let y = vec![0.0; n];
        let data = Dataset::from_rows(&rows, &y).unwrap();
        let binned = BinnedDataset::from_dataset(&data, 64);
        let grad: Vec<f64> = (0..n).map(|i| (i as f64 * 0.013).sin()).collect();
        let hess = vec![1.0; n];
        let all_rows: Vec<u32> = (0..n as u32).collect();
        let mut serial = vec![HistBin::default(); binned.total_bins()];
        binned.build_histogram(&all_rows, &grad, &hess, &mut serial, 1);
        for threads in [2, 3, 5, 16] {
            let mut parallel = vec![HistBin::default(); binned.total_bins()];
            binned.build_histogram(&all_rows, &grad, &hess, &mut parallel, threads);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
        // Sanity: the histogram really covers every row for each feature.
        for feature in 0..binned.n_features() {
            let count: u32 = serial[binned.offsets[feature]..binned.offsets[feature + 1]]
                .iter()
                .map(|b| b.count)
                .sum();
            assert_eq!(count as usize, n);
        }
    }

    #[test]
    fn constant_target_predicts_constant() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y = vec![4.2; 20];
        let data = Dataset::from_rows(&rows, &y).unwrap();
        let mut m = Gbt::new(GbtParams::default());
        m.fit(&data, None);
        assert!((m.predict_row(&[7.0]) - 4.2).abs() < 1e-9);
    }

    #[test]
    fn subsampling_is_deterministic_per_seed() {
        let data = wave_data(100);
        let params = GbtParams {
            n_trees: 20,
            subsample: 0.7,
            seed: 9,
            ..GbtParams::default()
        };
        let mut a = Gbt::new(params);
        let mut b = Gbt::new(params);
        a.fit(&data, None);
        b.fit(&data, None);
        assert_eq!(a.predict(data.x()), b.predict(data.x()));
    }

    #[test]
    fn depth_zero_trees_are_stumps_of_mean() {
        let data = wave_data(50);
        let mut m = Gbt::new(GbtParams {
            n_trees: 3,
            max_depth: 0,
            ..GbtParams::default()
        });
        m.fit(&data, None);
        // Every tree is a single leaf; with grad = pred - y the first leaf
        // weight is -(sum residual)/(n + lambda) which is ~0 since base
        // score is the mean. Prediction stays near the mean everywhere.
        let mean = data.y().iter().sum::<f64>() / data.len() as f64;
        assert!((m.predict_row(data.sample(0).0) - mean).abs() < 0.05);
    }

    #[test]
    fn coarse_max_bins_still_learns() {
        let data = wave_data(200);
        let mut m = Gbt::new(GbtParams {
            n_trees: 60,
            split_strategy: SplitStrategy::Histogram { max_bins: 8 },
            ..GbtParams::default()
        });
        m.fit(&data, None);
        let base = data.y().iter().sum::<f64>() / data.len() as f64;
        let base_mse = mse(&vec![base; data.len()], data.y());
        let model_mse = mse(&m.predict(data.x()), data.y());
        assert!(
            model_mse < base_mse * 0.1,
            "8-bin model should still fit: {model_mse} vs baseline {base_mse}"
        );
    }

    #[test]
    fn binning_is_lossless_below_max_bins() {
        // 40 distinct values <= 255 bins: cut points are exactly the
        // midpoints between adjacent distinct values.
        let rows: Vec<Vec<f64>> = (0..120).map(|i| vec![(i % 40) as f64]).collect();
        let y = vec![0.0; 120];
        let data = Dataset::from_rows(&rows, &y).unwrap();
        let binned = BinnedDataset::from_dataset(&data, 255);
        assert_eq!(binned.n_bins(0), 40);
        for (b, cut) in binned.cuts(0).iter().enumerate() {
            assert_eq!(*cut, b as f64 + 0.5);
        }
    }

    #[test]
    fn quantile_binning_caps_bin_count() {
        // 1000 distinct values with max_bins 16: at most 15 cuts, strictly
        // increasing, and every value codes to a valid bin.
        let rows: Vec<Vec<f64>> = (0..1000).map(|i| vec![(i as f64).sqrt()]).collect();
        let y = vec![0.0; 1000];
        let data = Dataset::from_rows(&rows, &y).unwrap();
        let binned = BinnedDataset::from_dataset(&data, 16);
        assert!(binned.n_bins(0) <= 16);
        assert!(binned.n_bins(0) >= 8, "quantiles should use most bins");
        let cuts = binned.cuts(0);
        assert!(cuts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn heavy_value_still_gets_cut_points() {
        // A dominant value used to swallow every quantile target: 30
        // singleton values (cumulative 30 < stride 37.5) followed by one
        // value holding 570 of 600 rows left the feature with zero cuts —
        // unsplittable under the default strategy while exact split it
        // fine. Heavy values now force boundary cuts (their own bin).
        let rows: Vec<Vec<f64>> = (0..600)
            .map(|i| vec![if i < 30 { i as f64 } else { 100.0 }])
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] < 50.0 { -1.0 } else { 1.0 })
            .collect();
        let data = Dataset::from_rows(&rows, &y).unwrap();
        let binned = BinnedDataset::from_dataset(&data, 16);
        assert!(
            binned.n_bins(0) >= 2,
            "heavy-tailed feature must stay splittable"
        );
        assert!(binned.cuts(0).windows(2).all(|w| w[0] < w[1]));
        let mut m = Gbt::new(GbtParams {
            n_trees: 10,
            split_strategy: SplitStrategy::Histogram { max_bins: 16 },
            ..GbtParams::default()
        });
        m.fit(&data, None);
        assert!(
            m.split_thresholds().iter().any(|&(f, _)| f == 0),
            "model must split the heavy-tailed feature"
        );
        let preds = m.predict(data.x());
        assert!(mse(&preds, data.y()) < 0.1);
    }

    #[test]
    fn hist_threads_override_is_bit_identical() {
        // Large enough that the root node clears HIST_PARALLEL_WORK, so
        // the multi-thread fit really exercises the scoped parallel
        // histogram path; predictions must match the serial fit exactly.
        let (n, f) = (4096, 32);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..f).map(|j| ((i * (j + 2)) % 89) as f64 * 0.5).collect())
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| (r[0] - r[f - 1]) * 0.1).collect();
        let data = Dataset::from_rows(&rows, &y).unwrap();
        let params = GbtParams {
            n_trees: 3,
            ..GbtParams::default()
        };
        let mut serial = Gbt::new(params).with_hist_threads(1);
        let mut parallel = Gbt::new(params).with_hist_threads(4);
        serial.fit(&data, None);
        parallel.fit(&data, None);
        assert_eq!(serial.predict(data.x()), parallel.predict(data.x()));
        assert_eq!(serial.split_thresholds(), parallel.split_thresholds());
    }

    #[test]
    fn constant_feature_has_zero_cuts_and_is_never_split() {
        // Mirrors the StandardScaler constant-mask behaviour: a feature
        // with one distinct value carries no signal. It must produce zero
        // cut points and never appear in a trained tree.
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![7.5, i as f64]).collect();
        let y: Vec<f64> = (0..60).map(|i| if i < 30 { -1.0 } else { 1.0 }).collect();
        let data = Dataset::from_rows(&rows, &y).unwrap();
        let binned = BinnedDataset::from_dataset(&data, 255);
        assert_eq!(binned.n_bins(0), 1);
        assert!(binned.cuts(0).is_empty());
        for strategy in [
            SplitStrategy::Histogram { max_bins: 255 },
            SplitStrategy::Exact,
        ] {
            let mut m = Gbt::new(GbtParams {
                n_trees: 10,
                split_strategy: strategy,
                ..GbtParams::default()
            });
            m.fit(&data, None);
            assert!(
                m.split_thresholds().iter().all(|&(f, _)| f != 0),
                "{strategy:?} split on a constant feature"
            );
            assert!(!m.split_thresholds().is_empty());
        }
    }
}

//! Gradient-boosted regression trees in the style of XGBoost.
//!
//! The paper's best stage-1 engine is "GBT-250" (250 boosted trees via
//! XGBoost). This module implements the same second-order boosting recipe:
//! per-round gradients/hessians of the squared loss, exact greedy splits
//! maximising the regularised gain, leaf weights `-G/(H+lambda)` and
//! shrinkage.

use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::Regressor;

/// Hyper-parameters for [`Gbt`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbtParams {
    /// Number of boosted trees (the paper evaluates 150 and 250).
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// L2 regularisation on leaf weights (XGBoost's `lambda`).
    pub lambda: f64,
    /// Minimum gain required to split (XGBoost's `gamma`).
    pub gamma: f64,
    /// Minimum sum of hessians in a child (XGBoost's `min_child_weight`).
    pub min_child_weight: f64,
    /// Fraction of rows sampled per tree (1.0 disables subsampling).
    pub subsample: f64,
    /// Seed for row subsampling.
    pub seed: u64,
}

impl Default for GbtParams {
    fn default() -> Self {
        GbtParams {
            n_trees: 250,
            max_depth: 4,
            learning_rate: 0.1,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
            subsample: 1.0,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        weight: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Rows with `x[feature] < threshold` go left.
        left: usize,
        right: usize,
    },
}

/// One regression tree stored as a flat arena of nodes.
#[derive(Debug, Clone)]
struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn predict(&self, x: &[f64]) -> f64 {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { weight } => return *weight,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if x[*feature] < *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// Gradient-boosted tree ensemble for regression (squared loss).
#[derive(Debug, Clone)]
pub struct Gbt {
    params: GbtParams,
    base_score: f64,
    trees: Vec<Tree>,
    n_features: usize,
}

impl Gbt {
    /// Creates an untrained ensemble.
    pub fn new(params: GbtParams) -> Self {
        Gbt {
            params,
            base_score: 0.0,
            trees: Vec::new(),
            n_features: 0,
        }
    }

    /// Number of trees actually grown.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Builds one tree on the given rows against gradients/hessians;
    /// returns the tree.
    fn build_tree(&self, data: &Dataset, rows: &[usize], grad: &[f64], hess: &[f64]) -> Tree {
        let mut tree = Tree { nodes: Vec::new() };
        self.grow(&mut tree, data, rows.to_vec(), grad, hess, 0);
        tree
    }

    /// Recursively grows `tree`, returning the index of the created node.
    fn grow(
        &self,
        tree: &mut Tree,
        data: &Dataset,
        rows: Vec<usize>,
        grad: &[f64],
        hess: &[f64],
        depth: usize,
    ) -> usize {
        let g_sum: f64 = rows.iter().map(|&r| grad[r]).sum();
        let h_sum: f64 = rows.iter().map(|&r| hess[r]).sum();
        let leaf = |tree: &mut Tree| {
            let weight = -g_sum / (h_sum + self.params.lambda);
            tree.nodes.push(Node::Leaf { weight });
            tree.nodes.len() - 1
        };
        if depth >= self.params.max_depth || rows.len() < 2 {
            return leaf(tree);
        }

        // Exact greedy: best split over every feature.
        let parent_score = g_sum * g_sum / (h_sum + self.params.lambda);
        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
        let mut sorted: Vec<(f64, f64, f64)> = Vec::with_capacity(rows.len());
        for feature in 0..data.n_features() {
            sorted.clear();
            for &r in &rows {
                sorted.push((data.sample(r).0[feature], grad[r], hess[r]));
            }
            sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            let mut gl = 0.0;
            let mut hl = 0.0;
            for i in 0..sorted.len() - 1 {
                gl += sorted[i].1;
                hl += sorted[i].2;
                if sorted[i].0 == sorted[i + 1].0 {
                    continue; // cannot split between equal values
                }
                let gr = g_sum - gl;
                let hr = h_sum - hl;
                if hl < self.params.min_child_weight || hr < self.params.min_child_weight {
                    continue;
                }
                let gain = 0.5
                    * (gl * gl / (hl + self.params.lambda) + gr * gr / (hr + self.params.lambda)
                        - parent_score)
                    - self.params.gamma;
                if gain > 0.0 && best.is_none_or(|(g, _, _)| gain > g) {
                    let threshold = (sorted[i].0 + sorted[i + 1].0) / 2.0;
                    best = Some((gain, feature, threshold));
                }
            }
        }

        match best {
            None => leaf(tree),
            Some((_, feature, threshold)) => {
                let (left_rows, right_rows): (Vec<usize>, Vec<usize>) = rows
                    .into_iter()
                    .partition(|&r| data.sample(r).0[feature] < threshold);
                // Reserve our slot before children are pushed.
                tree.nodes.push(Node::Leaf { weight: 0.0 });
                let me = tree.nodes.len() - 1;
                let left = self.grow(tree, data, left_rows, grad, hess, depth + 1);
                let right = self.grow(tree, data, right_rows, grad, hess, depth + 1);
                tree.nodes[me] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                me
            }
        }
    }
}

impl Regressor for Gbt {
    fn fit(&mut self, train: &Dataset, _val: Option<&Dataset>) {
        assert!(!train.is_empty(), "cannot fit GBT on an empty dataset");
        self.n_features = train.n_features();
        self.base_score = train.y().iter().sum::<f64>() / train.len() as f64;
        self.trees.clear();

        let mut pred = vec![self.base_score; train.len()];
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.params.seed);
        let all_rows: Vec<usize> = (0..train.len()).collect();
        for _ in 0..self.params.n_trees {
            // Squared loss: grad = pred - y, hess = 1.
            let grad: Vec<f64> = pred.iter().zip(train.y()).map(|(p, y)| p - y).collect();
            let hess = vec![1.0; train.len()];
            let rows: Vec<usize> = if self.params.subsample < 1.0 {
                let k = ((train.len() as f64) * self.params.subsample).max(1.0) as usize;
                let mut shuffled = all_rows.clone();
                shuffled.shuffle(&mut rng);
                shuffled.truncate(k);
                shuffled
            } else {
                all_rows.clone()
            };
            let tree = self.build_tree(train, &rows, &grad, &hess);
            for (i, p) in pred.iter_mut().enumerate() {
                *p += self.params.learning_rate * tree.predict(train.sample(i).0);
            }
            self.trees.push(tree);
        }
    }

    fn predict_row(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n_features, "feature count mismatch");
        self.base_score
            + self
                .trees
                .iter()
                .map(|t| self.params.learning_rate * t.predict(x))
                .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mse;

    fn wave_data(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64 * 6.0;
                vec![t, (t * 2.0).sin()]
            })
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0].sin() + 0.5 * r[1]).collect();
        Dataset::from_rows(&rows, &y).unwrap()
    }

    #[test]
    fn fits_nonlinear_function() {
        let data = wave_data(200);
        let mut m = Gbt::new(GbtParams {
            n_trees: 100,
            ..GbtParams::default()
        });
        m.fit(&data, None);
        let preds = m.predict(data.x());
        assert!(mse(&preds, data.y()) < 1e-3);
    }

    #[test]
    fn more_trees_reduce_training_error() {
        let data = wave_data(200);
        let mut small = Gbt::new(GbtParams {
            n_trees: 5,
            ..GbtParams::default()
        });
        let mut large = Gbt::new(GbtParams {
            n_trees: 100,
            ..GbtParams::default()
        });
        small.fit(&data, None);
        large.fit(&data, None);
        let e_small = mse(&small.predict(data.x()), data.y());
        let e_large = mse(&large.predict(data.x()), data.y());
        assert!(e_large < e_small, "{e_large} !< {e_small}");
    }

    #[test]
    fn constant_target_predicts_constant() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y = vec![4.2; 20];
        let data = Dataset::from_rows(&rows, &y).unwrap();
        let mut m = Gbt::new(GbtParams::default());
        m.fit(&data, None);
        assert!((m.predict_row(&[7.0]) - 4.2).abs() < 1e-9);
    }

    #[test]
    fn subsampling_is_deterministic_per_seed() {
        let data = wave_data(100);
        let params = GbtParams {
            n_trees: 20,
            subsample: 0.7,
            seed: 9,
            ..GbtParams::default()
        };
        let mut a = Gbt::new(params);
        let mut b = Gbt::new(params);
        a.fit(&data, None);
        b.fit(&data, None);
        assert_eq!(a.predict(data.x()), b.predict(data.x()));
    }

    #[test]
    fn depth_zero_trees_are_stumps_of_mean() {
        let data = wave_data(50);
        let mut m = Gbt::new(GbtParams {
            n_trees: 3,
            max_depth: 0,
            ..GbtParams::default()
        });
        m.fit(&data, None);
        // Every tree is a single leaf; with grad = pred - y the first leaf
        // weight is -(sum residual)/(n + lambda) which is ~0 since base
        // score is the mean. Prediction stays near the mean everywhere.
        let mean = data.y().iter().sum::<f64>() / data.len() as f64;
        assert!((m.predict_row(data.sample(0).0) - mean).abs() < 0.05);
    }
}

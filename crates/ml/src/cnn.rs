//! 1-D convolutional network regressor.
//!
//! Following the paper (§III-C), the per-step feature vector is treated as a
//! one-dimensional signal (after Eren et al. and Lee et al.), convolved by a
//! stack of `conv -> ReLU -> max-pool(2)` blocks, then flattened into a
//! ReLU dense layer and a linear output.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

use crate::adam::Adam;
use crate::dataset::Dataset;
use crate::metrics::mse;
use crate::scaler::StandardScaler;
use crate::Regressor;

/// Hyper-parameters for [`Cnn`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CnnParams {
    /// Number of `conv -> ReLU -> pool` blocks (paper prefix, e.g.
    /// `4-CNN-150` has 4).
    pub conv_blocks: usize,
    /// Convolution channels per block.
    pub filters: usize,
    /// Width of the dense hidden layer after flattening (paper postfix).
    pub hidden: usize,
    /// Learning rate for Adam.
    pub lr: f64,
    /// Global-norm gradient clip (the paper uses 0.01).
    pub clip_norm: Option<f64>,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Hard cap on training epochs.
    pub max_epochs: usize,
    /// Early-stopping patience in epochs.
    pub patience: usize,
    /// Seed for initialisation and shuffling.
    pub seed: u64,
}

impl Default for CnnParams {
    fn default() -> Self {
        CnnParams {
            conv_blocks: 1,
            filters: 8,
            hidden: 64,
            lr: 1e-3,
            clip_norm: Some(0.01),
            batch_size: 32,
            max_epochs: 300,
            patience: 100,
            seed: 0,
        }
    }
}

const KERNEL: usize = 3;

#[derive(Debug, Clone)]
struct ConvLayer {
    in_ch: usize,
    out_ch: usize,
    /// Weights `[out_ch][in_ch][KERNEL]` flattened.
    w: Vec<f64>,
    b: Vec<f64>,
}

impl ConvLayer {
    fn w_at(&self, o: usize, c: usize, k: usize) -> f64 {
        self.w[(o * self.in_ch + c) * KERNEL + k]
    }
}

/// Per-sample forward activations of one conv block (kept for backward).
#[derive(Debug, Clone)]
struct BlockTrace {
    /// Pre-activation conv output `[ch][len]`.
    pre: Vec<Vec<f64>>,
    /// Pooled output `[ch][len/2]`.
    pooled: Vec<Vec<f64>>,
    /// Argmax index into `relu` for each pooled element.
    argmax: Vec<Vec<usize>>,
}

/// 1-D convolutional regressor over feature vectors.
#[derive(Debug, Clone)]
pub struct Cnn {
    params: CnnParams,
    convs: Vec<ConvLayer>,
    /// Dense hidden layer: `[hidden][flat]` weights + biases.
    dense_w: Vec<f64>,
    dense_b: Vec<f64>,
    /// Output layer: `[1][hidden]` weights + bias.
    out_w: Vec<f64>,
    out_b: f64,
    flat_len: usize,
    n_features: usize,
    scaler: Option<StandardScaler>,
}

impl Cnn {
    /// Creates an untrained CNN.
    pub fn new(params: CnnParams) -> Self {
        Cnn {
            params,
            convs: Vec::new(),
            dense_w: Vec::new(),
            dense_b: Vec::new(),
            out_w: Vec::new(),
            out_b: 0.0,
            flat_len: 0,
            n_features: 0,
            scaler: None,
        }
    }

    /// Total number of trainable parameters (0 before fit).
    pub fn n_params(&self) -> usize {
        self.convs.iter().map(|c| c.w.len() + c.b.len()).sum::<usize>()
            + self.dense_w.len()
            + self.dense_b.len()
            + self.out_w.len()
            + 1
    }

    fn init(&mut self, n_features: usize, rng: &mut impl Rng) {
        self.n_features = n_features;
        self.convs.clear();
        let mut len = n_features;
        let mut in_ch = 1;
        for _ in 0..self.params.conv_blocks {
            if len < 2 {
                break; // signal too short to pool further
            }
            let out_ch = self.params.filters;
            let scale = (2.0 / (in_ch * KERNEL) as f64).sqrt();
            let w = (0..out_ch * in_ch * KERNEL)
                .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
                .collect();
            self.convs.push(ConvLayer { in_ch, out_ch, w, b: vec![0.0; out_ch] });
            len /= 2;
            in_ch = out_ch;
        }
        self.flat_len = len * in_ch;
        let h = self.params.hidden;
        let scale = (2.0 / self.flat_len as f64).sqrt();
        self.dense_w =
            (0..h * self.flat_len).map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale).collect();
        self.dense_b = vec![0.0; h];
        let scale = (2.0 / h as f64).sqrt();
        self.out_w = (0..h).map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale).collect();
        self.out_b = 0.0;
    }

    fn conv_forward(layer: &ConvLayer, input: &[Vec<f64>]) -> BlockTrace {
        let len = input[0].len();
        let mut pre = vec![vec![0.0; len]; layer.out_ch];
        for o in 0..layer.out_ch {
            for p in 0..len {
                let mut s = layer.b[o];
                for c in 0..layer.in_ch {
                    for k in 0..KERNEL {
                        let idx = p as isize + k as isize - 1; // same padding
                        if idx >= 0 && (idx as usize) < len {
                            s += layer.w_at(o, c, k) * input[c][idx as usize];
                        }
                    }
                }
                pre[o][p] = s;
            }
        }
        let relu: Vec<Vec<f64>> =
            pre.iter().map(|ch| ch.iter().map(|v| v.max(0.0)).collect()).collect();
        let pooled_len = len / 2;
        let mut pooled = vec![vec![0.0; pooled_len]; layer.out_ch];
        let mut argmax = vec![vec![0usize; pooled_len]; layer.out_ch];
        for o in 0..layer.out_ch {
            for q in 0..pooled_len {
                let (a, b) = (relu[o][2 * q], relu[o][2 * q + 1]);
                if a >= b {
                    pooled[o][q] = a;
                    argmax[o][q] = 2 * q;
                } else {
                    pooled[o][q] = b;
                    argmax[o][q] = 2 * q + 1;
                }
            }
        }
        BlockTrace { pre, pooled, argmax }
    }

    /// Full forward pass; returns (block traces, hidden pre-act, hidden
    /// post-act, output).
    fn forward(&self, x: &[f64]) -> (Vec<BlockTrace>, Vec<f64>, Vec<f64>, f64) {
        let mut signal: Vec<Vec<f64>> = vec![x.to_vec()];
        let mut traces = Vec::with_capacity(self.convs.len());
        for layer in &self.convs {
            let trace = Self::conv_forward(layer, &signal);
            signal = trace.pooled.clone();
            traces.push(trace);
        }
        let flat: Vec<f64> = signal.iter().flat_map(|ch| ch.iter().copied()).collect();
        debug_assert_eq!(flat.len(), self.flat_len);
        let h = self.params.hidden;
        let mut hidden_pre = vec![0.0; h];
        for (i, hp) in hidden_pre.iter_mut().enumerate() {
            let row = &self.dense_w[i * self.flat_len..(i + 1) * self.flat_len];
            *hp = self.dense_b[i] + row.iter().zip(&flat).map(|(w, v)| w * v).sum::<f64>();
        }
        let hidden: Vec<f64> = hidden_pre.iter().map(|v| v.max(0.0)).collect();
        let out =
            self.out_b + self.out_w.iter().zip(&hidden).map(|(w, v)| w * v).sum::<f64>();
        (traces, flat, hidden, out)
    }

    /// Backward pass accumulating into a `CnnGrad`; returns squared error.
    #[allow(clippy::too_many_arguments)]
    fn backward(
        &self,
        x: &[f64],
        traces: &[BlockTrace],
        flat: &[f64],
        hidden: &[f64],
        out: f64,
        target: f64,
        grad: &mut CnnGrad,
    ) -> f64 {
        let err = out - target;
        let d_out = 2.0 * err;
        grad.out_b += d_out;
        let h = self.params.hidden;
        let mut d_hidden = vec![0.0; h];
        for i in 0..h {
            grad.out_w[i] += d_out * hidden[i];
            if hidden[i] > 0.0 {
                d_hidden[i] = d_out * self.out_w[i];
            }
        }
        let mut d_flat = vec![0.0; self.flat_len];
        for i in 0..h {
            let d = d_hidden[i];
            if d == 0.0 {
                continue;
            }
            grad.dense_b[i] += d;
            let row = i * self.flat_len;
            for j in 0..self.flat_len {
                grad.dense_w[row + j] += d * flat[j];
                d_flat[j] += d * self.dense_w[row + j];
            }
        }
        // Un-flatten into per-channel gradient of the last pooled output.
        let mut d_signal: Vec<Vec<f64>> = Vec::new();
        if let Some(last) = traces.last() {
            let ch = last.pooled.len();
            let len = last.pooled[0].len();
            d_signal = (0..ch).map(|c| d_flat[c * len..(c + 1) * len].to_vec()).collect();
        }
        // Backward through conv blocks in reverse.
        for (bi, layer) in self.convs.iter().enumerate().rev() {
            let trace = &traces[bi];
            let input: Vec<Vec<f64>> = if bi == 0 {
                vec![x.to_vec()]
            } else {
                traces[bi - 1].pooled.clone()
            };
            let len = trace.pre[0].len();
            // Through pool: route gradient to argmax positions.
            let mut d_relu = vec![vec![0.0; len]; layer.out_ch];
            for o in 0..layer.out_ch {
                for q in 0..trace.pooled[o].len() {
                    d_relu[o][trace.argmax[o][q]] += d_signal[o][q];
                }
            }
            // Through ReLU.
            for o in 0..layer.out_ch {
                for p in 0..len {
                    if trace.pre[o][p] <= 0.0 {
                        d_relu[o][p] = 0.0;
                    }
                }
            }
            // Conv weight/bias/input gradients.
            let mut d_input = vec![vec![0.0; input[0].len()]; layer.in_ch];
            let g = &mut grad.convs[bi];
            for o in 0..layer.out_ch {
                for p in 0..len {
                    let d = d_relu[o][p];
                    if d == 0.0 {
                        continue;
                    }
                    g.b[o] += d;
                    for c in 0..layer.in_ch {
                        for k in 0..KERNEL {
                            let idx = p as isize + k as isize - 1;
                            if idx >= 0 && (idx as usize) < input[c].len() {
                                g.w[(o * layer.in_ch + c) * KERNEL + k] +=
                                    d * input[c][idx as usize];
                                d_input[c][idx as usize] += d * layer.w_at(o, c, k);
                            }
                        }
                    }
                }
            }
            d_signal = d_input;
        }
        err * err
    }

    fn eval(&self, data: &Dataset) -> f64 {
        let preds: Vec<f64> = (0..data.len()).map(|i| self.forward(data.sample(i).0).3).collect();
        mse(&preds, data.y())
    }

    fn flatten_grads(&self, grad: &CnnGrad, out: &mut Vec<f64>) {
        out.clear();
        for g in &grad.convs {
            out.extend_from_slice(&g.w);
            out.extend_from_slice(&g.b);
        }
        out.extend_from_slice(&grad.dense_w);
        out.extend_from_slice(&grad.dense_b);
        out.extend_from_slice(&grad.out_w);
        out.push(grad.out_b);
    }

    fn flatten_params(&self, out: &mut Vec<f64>) {
        out.clear();
        for c in &self.convs {
            out.extend_from_slice(&c.w);
            out.extend_from_slice(&c.b);
        }
        out.extend_from_slice(&self.dense_w);
        out.extend_from_slice(&self.dense_b);
        out.extend_from_slice(&self.out_w);
        out.push(self.out_b);
    }

    fn unflatten_params(&mut self, flat: &[f64]) {
        let mut i = 0;
        for c in &mut self.convs {
            let (wn, bn) = (c.w.len(), c.b.len());
            c.w.copy_from_slice(&flat[i..i + wn]);
            i += wn;
            c.b.copy_from_slice(&flat[i..i + bn]);
            i += bn;
        }
        let dn = self.dense_w.len();
        self.dense_w.copy_from_slice(&flat[i..i + dn]);
        i += dn;
        let bn = self.dense_b.len();
        self.dense_b.copy_from_slice(&flat[i..i + bn]);
        i += bn;
        let on = self.out_w.len();
        self.out_w.copy_from_slice(&flat[i..i + on]);
        i += on;
        self.out_b = flat[i];
    }
}

#[derive(Debug, Clone)]
struct ConvGrad {
    w: Vec<f64>,
    b: Vec<f64>,
}

#[derive(Debug, Clone)]
struct CnnGrad {
    convs: Vec<ConvGrad>,
    dense_w: Vec<f64>,
    dense_b: Vec<f64>,
    out_w: Vec<f64>,
    out_b: f64,
}

impl CnnGrad {
    fn zeros_like(net: &Cnn) -> Self {
        CnnGrad {
            convs: net
                .convs
                .iter()
                .map(|c| ConvGrad { w: vec![0.0; c.w.len()], b: vec![0.0; c.b.len()] })
                .collect(),
            dense_w: vec![0.0; net.dense_w.len()],
            dense_b: vec![0.0; net.dense_b.len()],
            out_w: vec![0.0; net.out_w.len()],
            out_b: 0.0,
        }
    }

    fn reset(&mut self) {
        for c in &mut self.convs {
            c.w.iter_mut().for_each(|v| *v = 0.0);
            c.b.iter_mut().for_each(|v| *v = 0.0);
        }
        self.dense_w.iter_mut().for_each(|v| *v = 0.0);
        self.dense_b.iter_mut().for_each(|v| *v = 0.0);
        self.out_w.iter_mut().for_each(|v| *v = 0.0);
        self.out_b = 0.0;
    }

    fn scale(&mut self, s: f64) {
        for c in &mut self.convs {
            c.w.iter_mut().for_each(|v| *v *= s);
            c.b.iter_mut().for_each(|v| *v *= s);
        }
        self.dense_w.iter_mut().for_each(|v| *v *= s);
        self.dense_b.iter_mut().for_each(|v| *v *= s);
        self.out_w.iter_mut().for_each(|v| *v *= s);
        self.out_b *= s;
    }
}

impl Regressor for Cnn {
    fn fit(&mut self, train: &Dataset, val: Option<&Dataset>) {
        assert!(!train.is_empty(), "cannot fit CNN on an empty dataset");
        assert!(train.n_features() >= 2, "CNN needs at least 2 features to convolve");
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.params.seed);
        let scaler = StandardScaler::fit(train.x());
        let train_scaled =
            Dataset::new(scaler.transform(train.x()), train.y().to_vec()).expect("shape kept");
        let val_scaled = val.map(|v| {
            Dataset::new(scaler.transform(v.x()), v.y().to_vec()).expect("shape kept")
        });
        self.init(train.n_features(), &mut rng);
        self.scaler = None;

        let n_params = self.n_params();
        let mut adam = Adam::new(n_params, self.params.lr, self.params.clip_norm);
        let mut grad = CnnGrad::zeros_like(self);
        let mut flat_grad = Vec::with_capacity(n_params);
        let mut flat_params = Vec::with_capacity(n_params);
        let mut order: Vec<usize> = (0..train_scaled.len()).collect();
        let mut best = Vec::new();
        self.flatten_params(&mut best);
        let mut best_loss = f64::INFINITY;
        let mut stale = 0;
        for _epoch in 0..self.params.max_epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(self.params.batch_size.max(1)) {
                grad.reset();
                for &i in chunk {
                    let (row, y) = train_scaled.sample(i);
                    let (traces, flat, hidden, out) = self.forward(row);
                    self.backward(row, &traces, &flat, &hidden, out, y, &mut grad);
                }
                grad.scale(1.0 / chunk.len() as f64);
                self.flatten_grads(&grad, &mut flat_grad);
                self.flatten_params(&mut flat_params);
                adam.step(&mut flat_params, &flat_grad);
                self.unflatten_params(&flat_params);
            }
            let monitored = val_scaled.as_ref().unwrap_or(&train_scaled);
            let loss = self.eval(monitored);
            if loss + 1e-12 < best_loss {
                best_loss = loss;
                self.flatten_params(&mut best);
                stale = 0;
            } else {
                stale += 1;
                if stale >= self.params.patience {
                    break;
                }
            }
        }
        self.unflatten_params(&best);
        self.scaler = Some(scaler);
    }

    fn predict_row(&self, x: &[f64]) -> f64 {
        let scaler = self.scaler.as_ref().expect("Cnn::predict_row called before fit");
        let z = scaler.transform_row(x);
        self.forward(&z).3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patterned_data(n: usize) -> Dataset {
        // 8-feature signal whose target depends on a local pattern.
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let t = i as f64 * 0.37;
                (0..8).map(|j| ((t + j as f64) * 0.9).sin()).collect()
            })
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| r[2] * r[3] + 0.3 * r[5]).collect();
        Dataset::from_rows(&rows, &y).unwrap()
    }

    #[test]
    fn learns_local_pattern() {
        let data = patterned_data(150);
        let mut m = Cnn::new(CnnParams {
            conv_blocks: 1,
            filters: 8,
            hidden: 32,
            max_epochs: 250,
            clip_norm: None,
            lr: 3e-3,
            ..CnnParams::default()
        });
        m.fit(&data, None);
        let err = mse(&m.predict(data.x()), data.y());
        assert!(err < 0.1, "mse {err}");
    }

    #[test]
    fn deterministic_per_seed() {
        let data = patterned_data(40);
        let params =
            CnnParams { conv_blocks: 1, filters: 4, hidden: 8, max_epochs: 10, ..CnnParams::default() };
        let mut a = Cnn::new(params);
        let mut b = Cnn::new(params);
        a.fit(&data, None);
        b.fit(&data, None);
        assert_eq!(a.predict_row(data.sample(3).0), b.predict_row(data.sample(3).0));
    }

    #[test]
    fn deep_stack_clamps_to_signal_length() {
        // 8 features can only be pooled 3 times; asking for 6 blocks must
        // not panic or produce an empty flat layer.
        let data = patterned_data(30);
        let mut m = Cnn::new(CnnParams {
            conv_blocks: 6,
            filters: 4,
            hidden: 8,
            max_epochs: 3,
            ..CnnParams::default()
        });
        m.fit(&data, None);
        assert!(m.predict_row(data.sample(0).0).is_finite());
    }
}

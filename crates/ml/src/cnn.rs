//! 1-D convolutional network regressor.
//!
//! Following the paper (§III-C), the per-step feature vector is treated as a
//! one-dimensional signal (after Eren et al. and Lee et al.), convolved by a
//! stack of `conv -> ReLU -> max-pool(2)` blocks, then flattened into a
//! ReLU dense layer and a linear output.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

use crate::adam::Adam;
use crate::dataset::Dataset;
use crate::matrix::{axpy, dot, gemv};
use crate::metrics::mse;
use crate::scaler::StandardScaler;
use crate::Regressor;

/// Hyper-parameters for [`Cnn`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CnnParams {
    /// Number of `conv -> ReLU -> pool` blocks (paper prefix, e.g.
    /// `4-CNN-150` has 4).
    pub conv_blocks: usize,
    /// Convolution channels per block.
    pub filters: usize,
    /// Width of the dense hidden layer after flattening (paper postfix).
    pub hidden: usize,
    /// Learning rate for Adam.
    pub lr: f64,
    /// Global-norm gradient clip (the paper uses 0.01).
    pub clip_norm: Option<f64>,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Hard cap on training epochs.
    pub max_epochs: usize,
    /// Early-stopping patience in epochs.
    pub patience: usize,
    /// Seed for initialisation and shuffling.
    pub seed: u64,
}

impl Default for CnnParams {
    fn default() -> Self {
        CnnParams {
            conv_blocks: 1,
            filters: 8,
            hidden: 64,
            lr: 1e-3,
            clip_norm: Some(0.01),
            batch_size: 32,
            max_epochs: 300,
            patience: 100,
            seed: 0,
        }
    }
}

const KERNEL: usize = 3;

#[derive(Debug, Clone)]
struct ConvLayer {
    in_ch: usize,
    out_ch: usize,
    /// Weights `[out_ch][in_ch][KERNEL]` flattened.
    w: Vec<f64>,
    b: Vec<f64>,
}

impl ConvLayer {
    fn w_at(&self, o: usize, c: usize, k: usize) -> f64 {
        self.w[(o * self.in_ch + c) * KERNEL + k]
    }
}

/// Forward activations of one conv block, in flat channel-major buffers
/// (`ch x len` with stride `len`). Reused across samples: buffers are
/// resized once and overwritten thereafter.
#[derive(Debug, Clone, Default)]
struct BlockTrace {
    /// Pre-activation conv output (`out_ch x len`).
    pre: Vec<f64>,
    /// Signal length entering this block.
    len: usize,
    /// Pooled output (`out_ch x len/2`).
    pooled: Vec<f64>,
    /// Pooled length (`len/2`).
    pooled_len: usize,
    /// Argmax offset (within the channel) for each pooled element.
    argmax: Vec<usize>,
}

/// Reusable per-sample forward/backward buffers. Allocated once per fit
/// (or per prediction) and recycled across every sample and epoch.
#[derive(Debug, Clone, Default)]
struct CnnScratch {
    /// One trace per conv block.
    traces: Vec<BlockTrace>,
    /// Dense hidden activations (post-ReLU).
    hidden: Vec<f64>,
    /// Gradient wrt the dense hidden activations.
    d_hidden: Vec<f64>,
    /// Gradient wrt the flattened conv output.
    d_flat: Vec<f64>,
    /// Gradient wrt a block's ReLU output (`out_ch x len`).
    d_relu: Vec<f64>,
    /// Gradient wrt a block's input (`in_ch x len`).
    d_input: Vec<f64>,
    /// Secondary signal-gradient buffer (ping-pong with `d_input`).
    d_signal: Vec<f64>,
}

/// 1-D convolutional regressor over feature vectors.
#[derive(Debug, Clone)]
pub struct Cnn {
    params: CnnParams,
    convs: Vec<ConvLayer>,
    /// Dense hidden layer: `[hidden][flat]` weights + biases.
    dense_w: Vec<f64>,
    dense_b: Vec<f64>,
    /// Output layer: `[1][hidden]` weights + bias.
    out_w: Vec<f64>,
    out_b: f64,
    flat_len: usize,
    n_features: usize,
    scaler: Option<StandardScaler>,
}

impl Cnn {
    /// Creates an untrained CNN.
    pub fn new(params: CnnParams) -> Self {
        Cnn {
            params,
            convs: Vec::new(),
            dense_w: Vec::new(),
            dense_b: Vec::new(),
            out_w: Vec::new(),
            out_b: 0.0,
            flat_len: 0,
            n_features: 0,
            scaler: None,
        }
    }

    /// Total number of trainable parameters (0 before fit).
    pub fn n_params(&self) -> usize {
        self.convs
            .iter()
            .map(|c| c.w.len() + c.b.len())
            .sum::<usize>()
            + self.dense_w.len()
            + self.dense_b.len()
            + self.out_w.len()
            + 1
    }

    fn init(&mut self, n_features: usize, rng: &mut impl Rng) {
        self.n_features = n_features;
        self.convs.clear();
        let mut len = n_features;
        let mut in_ch = 1;
        for _ in 0..self.params.conv_blocks {
            if len < 2 {
                break; // signal too short to pool further
            }
            let out_ch = self.params.filters;
            let scale = (2.0 / (in_ch * KERNEL) as f64).sqrt();
            let w = (0..out_ch * in_ch * KERNEL)
                .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
                .collect();
            self.convs.push(ConvLayer {
                in_ch,
                out_ch,
                w,
                b: vec![0.0; out_ch],
            });
            len /= 2;
            in_ch = out_ch;
        }
        self.flat_len = len * in_ch;
        let h = self.params.hidden;
        let scale = (2.0 / self.flat_len as f64).sqrt();
        self.dense_w = (0..h * self.flat_len)
            .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
            .collect();
        self.dense_b = vec![0.0; h];
        let scale = (2.0 / h as f64).sqrt();
        self.out_w = (0..h)
            .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
            .collect();
        self.out_b = 0.0;
    }

    /// Convolves `input` (`in_ch x len`, flat channel-major) into the
    /// trace's reusable buffers.
    fn conv_forward(layer: &ConvLayer, input: &[f64], len: usize, trace: &mut BlockTrace) {
        trace.len = len;
        trace.pre.clear();
        trace.pre.resize(layer.out_ch * len, 0.0);
        for o in 0..layer.out_ch {
            let pre = &mut trace.pre[o * len..(o + 1) * len];
            pre.iter_mut().for_each(|v| *v = layer.b[o]);
            for c in 0..layer.in_ch {
                let ch = &input[c * len..(c + 1) * len];
                for k in 0..KERNEL {
                    // Same padding: output p reads input p + k - 1.
                    let w = layer.w_at(o, c, k);
                    let shift = k as isize - 1;
                    let (p0, p1) = match shift {
                        -1 => (1, len),
                        0 => (0, len),
                        _ => (0, len.saturating_sub(1)),
                    };
                    for p in p0..p1 {
                        pre[p] += w * ch[(p as isize + shift) as usize];
                    }
                }
            }
        }
        let pooled_len = len / 2;
        trace.pooled_len = pooled_len;
        trace.pooled.clear();
        trace.pooled.resize(layer.out_ch * pooled_len, 0.0);
        trace.argmax.clear();
        trace.argmax.resize(layer.out_ch * pooled_len, 0);
        for o in 0..layer.out_ch {
            let pre = &trace.pre[o * len..(o + 1) * len];
            for q in 0..pooled_len {
                let (a, b) = (pre[2 * q].max(0.0), pre[2 * q + 1].max(0.0));
                let (v, idx) = if a >= b { (a, 2 * q) } else { (b, 2 * q + 1) };
                trace.pooled[o * pooled_len + q] = v;
                trace.argmax[o * pooled_len + q] = idx;
            }
        }
    }

    /// Full forward pass into the scratch; returns the scalar output. The
    /// dense layers run through the [`gemv`]/[`dot`] kernels and every
    /// intermediate lives in a reused buffer.
    fn forward_with(&self, x: &[f64], scratch: &mut CnnScratch) -> f64 {
        scratch
            .traces
            .resize_with(self.convs.len(), BlockTrace::default);
        let mut len = x.len();
        for (bi, layer) in self.convs.iter().enumerate() {
            let (done, rest) = scratch.traces.split_at_mut(bi);
            let input: &[f64] = if bi == 0 { x } else { &done[bi - 1].pooled };
            Self::conv_forward(layer, input, len, &mut rest[0]);
            len = rest[0].pooled_len;
        }
        let flat: &[f64] = match scratch.traces.last() {
            Some(last) => &last.pooled,
            None => x,
        };
        debug_assert_eq!(flat.len(), self.flat_len);
        let h = self.params.hidden;
        scratch.hidden.resize(h, 0.0);
        gemv(&self.dense_w, h, self.flat_len, flat, &mut scratch.hidden);
        for (v, b) in scratch.hidden.iter_mut().zip(&self.dense_b) {
            *v = (*v + b).max(0.0);
        }
        self.out_b + dot(&self.out_w, &scratch.hidden)
    }

    /// Backward pass over the activations left by [`Cnn::forward_with`];
    /// accumulates into `grad` and returns the squared error.
    fn backward_with(
        &self,
        x: &[f64],
        out: f64,
        target: f64,
        scratch: &mut CnnScratch,
        grad: &mut CnnGrad,
    ) -> f64 {
        let err = out - target;
        let d_out = 2.0 * err;
        grad.out_b += d_out;
        let h = self.params.hidden;
        let hidden = &scratch.hidden;
        axpy(d_out, hidden, &mut grad.out_w);
        scratch.d_hidden.resize(h, 0.0);
        for ((dh, &a), &w) in scratch.d_hidden.iter_mut().zip(hidden).zip(&self.out_w) {
            *dh = if a > 0.0 { d_out * w } else { 0.0 };
        }
        scratch.d_flat.clear();
        scratch.d_flat.resize(self.flat_len, 0.0);
        let flat_owned_by_trace = !scratch.traces.is_empty();
        {
            // `flat` aliases the last trace's pooled buffer, which the
            // remaining backward steps only read.
            let d_hidden = &scratch.d_hidden;
            for (i, &d) in d_hidden.iter().enumerate() {
                if d == 0.0 {
                    continue;
                }
                grad.dense_b[i] += d;
                let row = i * self.flat_len;
                let flat: &[f64] = if flat_owned_by_trace {
                    &scratch.traces[scratch.traces.len() - 1].pooled
                } else {
                    x
                };
                axpy(d, flat, &mut grad.dense_w[row..row + self.flat_len]);
                axpy(
                    d,
                    &self.dense_w[row..row + self.flat_len],
                    &mut scratch.d_flat,
                );
            }
        }
        // Backward through conv blocks in reverse; the signal gradient
        // ping-pongs between two reusable buffers.
        scratch.d_signal.clear();
        scratch.d_signal.extend_from_slice(&scratch.d_flat);
        for (bi, layer) in self.convs.iter().enumerate().rev() {
            let (done, rest) = scratch.traces.split_at_mut(bi);
            let trace = &rest[0];
            let (input, in_len): (&[f64], usize) = if bi == 0 {
                (x, trace.len)
            } else {
                (&done[bi - 1].pooled, trace.len)
            };
            let len = trace.len;
            // Through pool: route gradient to argmax positions, then gate
            // by ReLU'(pre).
            scratch.d_relu.clear();
            scratch.d_relu.resize(layer.out_ch * len, 0.0);
            for o in 0..layer.out_ch {
                for q in 0..trace.pooled_len {
                    let idx = trace.argmax[o * trace.pooled_len + q];
                    if trace.pre[o * len + idx] > 0.0 {
                        scratch.d_relu[o * len + idx] += scratch.d_signal[o * trace.pooled_len + q];
                    }
                }
            }
            // Conv weight/bias/input gradients.
            scratch.d_input.clear();
            scratch.d_input.resize(layer.in_ch * in_len, 0.0);
            let g = &mut grad.convs[bi];
            for o in 0..layer.out_ch {
                for p in 0..len {
                    let d = scratch.d_relu[o * len + p];
                    if d == 0.0 {
                        continue;
                    }
                    g.b[o] += d;
                    for c in 0..layer.in_ch {
                        let ch = &input[c * in_len..(c + 1) * in_len];
                        let d_ch = &mut scratch.d_input[c * in_len..(c + 1) * in_len];
                        for k in 0..KERNEL {
                            let idx = p as isize + k as isize - 1;
                            if idx >= 0 && (idx as usize) < in_len {
                                g.w[(o * layer.in_ch + c) * KERNEL + k] += d * ch[idx as usize];
                                d_ch[idx as usize] += d * layer.w_at(o, c, k);
                            }
                        }
                    }
                }
            }
            std::mem::swap(&mut scratch.d_signal, &mut scratch.d_input);
        }
        err * err
    }

    fn eval(&self, data: &Dataset, scratch: &mut CnnScratch) -> f64 {
        let preds: Vec<f64> = (0..data.len())
            .map(|i| self.forward_with(data.sample(i).0, scratch))
            .collect();
        mse(&preds, data.y())
    }

    fn flatten_grads(&self, grad: &CnnGrad, out: &mut Vec<f64>) {
        out.clear();
        for g in &grad.convs {
            out.extend_from_slice(&g.w);
            out.extend_from_slice(&g.b);
        }
        out.extend_from_slice(&grad.dense_w);
        out.extend_from_slice(&grad.dense_b);
        out.extend_from_slice(&grad.out_w);
        out.push(grad.out_b);
    }

    fn flatten_params(&self, out: &mut Vec<f64>) {
        out.clear();
        for c in &self.convs {
            out.extend_from_slice(&c.w);
            out.extend_from_slice(&c.b);
        }
        out.extend_from_slice(&self.dense_w);
        out.extend_from_slice(&self.dense_b);
        out.extend_from_slice(&self.out_w);
        out.push(self.out_b);
    }

    fn unflatten_params(&mut self, flat: &[f64]) {
        let mut i = 0;
        for c in &mut self.convs {
            let (wn, bn) = (c.w.len(), c.b.len());
            c.w.copy_from_slice(&flat[i..i + wn]);
            i += wn;
            c.b.copy_from_slice(&flat[i..i + bn]);
            i += bn;
        }
        let dn = self.dense_w.len();
        self.dense_w.copy_from_slice(&flat[i..i + dn]);
        i += dn;
        let bn = self.dense_b.len();
        self.dense_b.copy_from_slice(&flat[i..i + bn]);
        i += bn;
        let on = self.out_w.len();
        self.out_w.copy_from_slice(&flat[i..i + on]);
        i += on;
        self.out_b = flat[i];
    }
}

#[derive(Debug, Clone)]
struct ConvGrad {
    w: Vec<f64>,
    b: Vec<f64>,
}

#[derive(Debug, Clone)]
struct CnnGrad {
    convs: Vec<ConvGrad>,
    dense_w: Vec<f64>,
    dense_b: Vec<f64>,
    out_w: Vec<f64>,
    out_b: f64,
}

impl CnnGrad {
    fn zeros_like(net: &Cnn) -> Self {
        CnnGrad {
            convs: net
                .convs
                .iter()
                .map(|c| ConvGrad {
                    w: vec![0.0; c.w.len()],
                    b: vec![0.0; c.b.len()],
                })
                .collect(),
            dense_w: vec![0.0; net.dense_w.len()],
            dense_b: vec![0.0; net.dense_b.len()],
            out_w: vec![0.0; net.out_w.len()],
            out_b: 0.0,
        }
    }

    fn reset(&mut self) {
        for c in &mut self.convs {
            c.w.iter_mut().for_each(|v| *v = 0.0);
            c.b.iter_mut().for_each(|v| *v = 0.0);
        }
        self.dense_w.iter_mut().for_each(|v| *v = 0.0);
        self.dense_b.iter_mut().for_each(|v| *v = 0.0);
        self.out_w.iter_mut().for_each(|v| *v = 0.0);
        self.out_b = 0.0;
    }

    fn scale(&mut self, s: f64) {
        for c in &mut self.convs {
            c.w.iter_mut().for_each(|v| *v *= s);
            c.b.iter_mut().for_each(|v| *v *= s);
        }
        self.dense_w.iter_mut().for_each(|v| *v *= s);
        self.dense_b.iter_mut().for_each(|v| *v *= s);
        self.out_w.iter_mut().for_each(|v| *v *= s);
        self.out_b *= s;
    }
}

impl Regressor for Cnn {
    fn fit(&mut self, train: &Dataset, val: Option<&Dataset>) {
        assert!(!train.is_empty(), "cannot fit CNN on an empty dataset");
        assert!(
            train.n_features() >= 2,
            "CNN needs at least 2 features to convolve"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.params.seed);
        let scaler = StandardScaler::fit(train.x());
        let train_scaled =
            Dataset::new(scaler.transform(train.x()), train.y().to_vec()).expect("shape kept");
        let val_scaled =
            val.map(|v| Dataset::new(scaler.transform(v.x()), v.y().to_vec()).expect("shape kept"));
        self.init(train.n_features(), &mut rng);
        self.scaler = None;

        let n_params = self.n_params();
        let mut adam = Adam::new(n_params, self.params.lr, self.params.clip_norm);
        let mut grad = CnnGrad::zeros_like(self);
        let mut scratch = CnnScratch::default();
        let mut flat_grad = Vec::with_capacity(n_params);
        let mut flat_params = Vec::with_capacity(n_params);
        let mut order: Vec<usize> = (0..train_scaled.len()).collect();
        let mut best = Vec::new();
        self.flatten_params(&mut best);
        let mut best_loss = f64::INFINITY;
        let mut stale = 0;
        for _epoch in 0..self.params.max_epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(self.params.batch_size.max(1)) {
                grad.reset();
                for &i in chunk {
                    let (row, y) = train_scaled.sample(i);
                    let out = self.forward_with(row, &mut scratch);
                    self.backward_with(row, out, y, &mut scratch, &mut grad);
                }
                grad.scale(1.0 / chunk.len() as f64);
                self.flatten_grads(&grad, &mut flat_grad);
                self.flatten_params(&mut flat_params);
                adam.step(&mut flat_params, &flat_grad);
                self.unflatten_params(&flat_params);
            }
            let monitored = val_scaled.as_ref().unwrap_or(&train_scaled);
            let loss = self.eval(monitored, &mut scratch);
            if loss + 1e-12 < best_loss {
                best_loss = loss;
                self.flatten_params(&mut best);
                stale = 0;
            } else {
                stale += 1;
                if stale >= self.params.patience {
                    break;
                }
            }
        }
        self.unflatten_params(&best);
        self.scaler = Some(scaler);
    }

    fn predict_row(&self, x: &[f64]) -> f64 {
        let scaler = self
            .scaler
            .as_ref()
            .expect("Cnn::predict_row called before fit");
        let z = scaler.transform_row(x);
        self.forward_with(&z, &mut CnnScratch::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patterned_data(n: usize) -> Dataset {
        // 8-feature signal whose target depends on a local pattern.
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let t = i as f64 * 0.37;
                (0..8).map(|j| ((t + j as f64) * 0.9).sin()).collect()
            })
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| r[2] * r[3] + 0.3 * r[5]).collect();
        Dataset::from_rows(&rows, &y).unwrap()
    }

    #[test]
    fn learns_local_pattern() {
        let data = patterned_data(150);
        let mut m = Cnn::new(CnnParams {
            conv_blocks: 1,
            filters: 8,
            hidden: 32,
            max_epochs: 250,
            clip_norm: None,
            lr: 3e-3,
            ..CnnParams::default()
        });
        m.fit(&data, None);
        let err = mse(&m.predict(data.x()), data.y());
        assert!(err < 0.1, "mse {err}");
    }

    #[test]
    fn deterministic_per_seed() {
        let data = patterned_data(40);
        let params = CnnParams {
            conv_blocks: 1,
            filters: 4,
            hidden: 8,
            max_epochs: 10,
            ..CnnParams::default()
        };
        let mut a = Cnn::new(params);
        let mut b = Cnn::new(params);
        a.fit(&data, None);
        b.fit(&data, None);
        assert_eq!(
            a.predict_row(data.sample(3).0),
            b.predict_row(data.sample(3).0)
        );
    }

    #[test]
    fn deep_stack_clamps_to_signal_length() {
        // 8 features can only be pooled 3 times; asking for 6 blocks must
        // not panic or produce an empty flat layer.
        let data = patterned_data(30);
        let mut m = Cnn::new(CnnParams {
            conv_blocks: 6,
            filters: 4,
            hidden: 8,
            max_epochs: 3,
            ..CnnParams::default()
        });
        m.fit(&data, None);
        assert!(m.predict_row(data.sample(0).0).is_finite());
    }
}
